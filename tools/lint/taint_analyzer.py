#!/usr/bin/env python3
"""Semantic secret-taint analyzer for the ppds crypto stack.

Where secret_hygiene.py is lexical (it flags *names* like ``*key*``), this
tool follows secret *values*. Roots are declared in source with the
primitives from include/ppds/common/secret_taint.hpp:

  * ``PPDS_SECRET`` on a declaration (member, local, parameter) — one
    declarator per annotation;
  * ``Secret<T>`` wrapper declarations;

and taint propagates through assignments, arithmetic, one level of call
summaries (functions whose return value is tainted), write-through helpers
(store_le64 & friends), and span aliases (append_raw / subspan views).

Five defect classes are reported, each as a root -> sink flow with
file:line steps:

  secret-branch      if/switch/ternary condition depends on a secret value
  secret-loop-bound  for/while trip count depends on a secret value
  secret-index       memory access indexed by a secret value
  secret-divmod      secret operand to variable-latency / or %
  secret-sink        secret value reaches an I/O or format sink

Declassification semantics: ``PPDS_DECLASSIFY(expr, why)`` blesses VALUE
flows only — it silences secret-sink and stops propagation through
assignments. It does NOT silence the timing rules: branching directly on
``PPDS_DECLASSIFY(v < 0, ...)`` still fires secret-branch. The sanctioned
reveal pattern is two-step::

    bool negative = PPDS_DECLASSIFY(v < 0.0, "masked sign reveal");
    return negative ? -1 : +1;   // branches on a *public* bool

Sanitizers (hash-shaped functions whose output is safe to treat as public
unless explicitly re-rooted) mask both value and timing taint at the call
site: sha256, sha256_tagged, hash_to_key, xor_pad, finish, protocol_digest,
similarity_digest.

Frontends:

  builtin   self-contained tokenizer + flow analysis (no dependencies);
            the CI gate and --self-test run this frontend.
  libclang  AST-accurate pass driven by compile_commands.json; used
            automatically when the python clang bindings + libclang are
            installed, best-effort otherwise.

Suppressions (zero-growth budget, justification required in review):

  // taint: allow(<rule-id>)       on the offending line or the line above
  // taint: allow-file(<rule-id>)  silences the rule for the whole file

Pre-existing findings being burned down live in
tools/lint/taint_baseline.txt as ``path|function|rule|max -- justification``
lines; a baseline entry that no longer matches anything is an error (stale
entries must be deleted, never accumulated).

Exit status: 0 clean, 1 findings / stale baseline, 2 usage or self-test
failure.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import re
import sys
from pathlib import Path

SCAN_DIRS = [
    "src/crypto",
    "src/ompe",
    "src/core",
    "src/net",
    "src/server",
    "include/ppds/crypto",
    "include/ppds/ompe",
    "include/ppds/core",
    "include/ppds/net",
    "include/ppds/server",
    # SIMD field backend: the packed-lane kernels (field/m61xn.hpp) carry
    # secret residues through branch-free select/cmp masks — scan them so a
    # future secret-dependent branch in a lane op cannot slip in unseen.
    "include/ppds/field",
    "include/ppds/math",
]

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}

RULES = {
    "secret-branch": "branch/ternary/switch condition depends on a secret value",
    "secret-loop-bound": "loop trip count depends on a secret value",
    "secret-index": "memory access indexed by a secret value",
    "secret-divmod": "secret operand to variable-latency / or %",
    "secret-sink": "secret value reaches an I/O or format sink without PPDS_DECLASSIFY",
}

# Hash-shaped calls whose result is public unless explicitly re-rooted.
# pow_g is the fixed-base g^x map: its output is the protocol's public key
# and recovering x is discrete log. Variable-base pow() (shared secrets)
# deliberately stays tainted.
SANITIZERS = {
    "sha256",
    "sha256_tagged",
    "hash_to_key",
    "xor_pad",
    "finish",
    "protocol_digest",
    "similarity_digest",
    "pow_g",
}

# Methods whose result reveals only public metadata of a secret container.
# Deliberately NOT begin/end/data: pointers into secret storage stay tainted.
PROJECTIONS = {"size", "empty", "length", "capacity", "remaining", "ssize",
               # Public-by-contract shape accessors: a polynomial's arity and
               # total degree are protocol parameters (ompe.hpp), not secrets.
               "arity", "total_degree"}

# Calls that write their later arguments through their first argument.
WRITE_THROUGH = {"store_le64", "store_le_f64", "memcpy"}

# Methods returning a view into the receiver: tainting the view taints it.
ALIAS_METHODS = {"append_raw", "subspan"}

# Const math/codec methods: passing a secret ARGUMENT does not taint the
# receiver object (a DhGroup fed a secret exponent stays public parameters).
# The call's RESULT still carries taint through normal expression rules.
PURE_METHODS = {
    "pow", "pow_with", "mul", "invert", "serialize", "deserialize",
    "q", "element_bytes", "make_table",
}

# Call names that move bytes off-host or into logs/format machinery.
SINKS = {"send", "printf", "fprintf", "snprintf", "vprintf", "fwrite", "fputs", "puts"}

CONTROL_KEYWORDS = {
    "if", "else", "for", "while", "switch", "catch", "return", "do",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "throw", "case", "default", "operator", "requires",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="}

ALLOW_LINE = re.compile(r"//.*?taint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE = re.compile(r"//.*?taint:\s*allow-file\(([a-z-]+)\)")

MAX_CHAIN_STEPS = 8
MAX_FIXPOINT_ITERS = 24
MAX_SUMMARY_ROUNDS = 6


@dataclasses.dataclass
class Finding:
    path: Path
    line: int
    rule: str
    function: str
    message: str
    chain: list[str] = dataclasses.field(default_factory=list)

    def key(self, root: Path) -> tuple[str, str, str]:
        try:
            rel = str(self.path.relative_to(root))
        except ValueError:
            rel = str(self.path)
        return (rel, self.function, self.rule)


@dataclasses.dataclass
class Tok:
    text: str
    line: int

    @property
    def is_ident(self) -> bool:
        c = self.text[0]
        return c.isalpha() or c == "_"


_TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|0[xXbB][0-9a-fA-F']+[uUlL]*"
    r"|\d[\w'.]*(?:[eEpP][+-]?\d+)?[\w]*"
    r"|<<=|>>=|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|"
    r"|[-+*/%^&|]=|=|[-+*/%^&|~!<>?:.,;(){}\[\]#]"
)


def strip_comments_strings(text: str) -> str:
    """Blank comments, string/char literals and preprocessor lines while
    preserving every newline (so token lines stay accurate)."""

    def blank(match: re.Match) -> str:
        s = match.group(0)
        if s.startswith("//"):
            return " " * len(s)
        if s.startswith("/*"):
            return "".join(c if c == "\n" else " " for c in s)
        return '""' if s[0] == '"' else "' '"

    text = re.sub(
        r"//[^\n]*|/\*.*?\*/|\"(?:[^\"\\\n]|\\.)*\"|'(?:[^'\\\n]|\\.)*'",
        blank,
        text,
        flags=re.S,
    )
    # Preprocessor lines (and their backslash continuations).
    out_lines = []
    in_pp = False
    for line in text.split("\n"):
        stripped = line.lstrip()
        if in_pp or stripped.startswith("#"):
            in_pp = line.rstrip().endswith("\\")
            # Keep PPDS_* macro definitions invisible; blank the line.
            out_lines.append("")
        else:
            in_pp = False
            out_lines.append(line)
    return "\n".join(out_lines)


def lex(text: str) -> list[Tok]:
    toks = []
    line = 1
    pos = 0
    for m in _TOKEN_RE.finditer(text):
        line += text.count("\n", pos, m.start())
        pos = m.start()
        toks.append(Tok(m.group(0), line))
    return toks


def collect_suppressions(raw: str) -> tuple[dict[int, set[str]], set[str]]:
    per_line: dict[int, set[str]] = {}
    per_file: set[str] = set()
    for i, line in enumerate(raw.splitlines(), start=1):
        for m in ALLOW_LINE.finditer(line):
            per_line.setdefault(i, set()).add(m.group(1))
        for m in ALLOW_FILE.finditer(line):
            per_file.add(m.group(1))
    return per_line, per_file


# One declarator per PPDS_SECRET annotation (enforced by convention; the
# scanner takes the last identifier before the initializer/terminator).
_ANNOT_DECL = re.compile(r"\bPPDS_SECRET\b([^;{(),]*)")


def _declared_name(decl_text: str) -> str | None:
    head = re.sub(r"\[.*", "", decl_text.split("=")[0])
    ids = re.findall(r"[A-Za-z_]\w*", head)
    ids = [i for i in ids if i not in ("const", "constexpr", "static", "mutable")]
    return ids[-1] if ids else None


def match_group(toks: list[Tok], i: int) -> int:
    """Index of the token closing the group opened at toks[i]."""
    openers = {"(": ")", "[": "]", "{": "}"}
    close = openers[toks[i].text]
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == toks[i].text:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


def split_top(toks: list[Tok], sep: str) -> list[list[Tok]]:
    parts: list[list[Tok]] = [[]]
    depth = 0
    for t in toks:
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
        if t.text == sep and depth == 0:
            parts.append([])
        else:
            parts[-1].append(t)
    return parts


@dataclasses.dataclass
class Func:
    name: str
    display: str
    params: list[Tok]
    body: list[Tok]
    path: Path


def extract_functions(toks: list[Tok], path: Path) -> list[Func]:
    funcs = []
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text != "(":
            i += 1
            continue
        prev = toks[i - 1] if i > 0 else None
        if prev is None or not prev.is_ident or prev.text in CONTROL_KEYWORDS:
            i += 1
            continue
        close = match_group(toks, i)
        # Skip trailing qualifiers / ctor init lists up to '{' or give up.
        j = close + 1
        depth_guard = 0
        while j < n:
            t = toks[j].text
            if t == "{" and depth_guard == 0:
                break
            if t in (";", "}", "=") and depth_guard == 0:
                j = -1
                break
            if t in "([":
                j = match_group(toks, j)
            elif t == "<":
                depth_guard += 1
            elif t == ">":
                depth_guard = max(0, depth_guard - 1)
            j += 1
        if j == -1 or j >= n:
            i = close + 1
            continue
        body_end = match_group(toks, j)
        name = prev.text
        display = name
        k = i - 2
        while k > 0 and toks[k].text == "::" and toks[k - 1].is_ident:
            display = toks[k - 1].text + "::" + display
            k -= 2
        funcs.append(
            Func(
                name=name,
                display=display,
                params=toks[i + 1 : close],
                body=toks[j + 1 : body_end],
                path=path,
            )
        )
        i = body_end + 1
    return funcs


@dataclasses.dataclass
class Stmt:
    kind: str  # stmt | if | switch | while | for | range_for | return
    toks: list[Tok]
    line: int
    # for `for`: cond part; for range_for: (var, container)
    extra: tuple = ()


def split_statements(body: list[Tok]) -> list[Stmt]:
    stmts: list[Stmt] = []
    i = 0
    n = len(body)
    cur: list[Tok] = []

    def flush():
        nonlocal cur
        if cur:
            kind = "return" if cur[0].text == "return" else "stmt"
            stmts.append(Stmt(kind, cur, cur[0].line))
            cur = []

    while i < n:
        t = body[i]
        if t.text in ("if", "while", "switch", "for") and i + 1 < n and body[i + 1].text == "(":
            flush()
            close = match_group(body, i + 1)
            group = body[i + 2 : close]
            if t.text == "for":
                semis = split_top(group, ";")
                if len(semis) >= 3:
                    stmts.append(Stmt("for", semis[1], t.line))
                    # init and increment still propagate/check as statements
                    stmts.append(Stmt("stmt", semis[0], t.line))
                    stmts.append(Stmt("stmt", semis[2], t.line))
                else:
                    colon = split_top(group, ":")
                    if len(colon) == 2:
                        var = None
                        for tk in reversed(colon[0]):
                            if tk.is_ident and tk.text not in CONTROL_KEYWORDS:
                                var = tk.text
                                break
                        stmts.append(
                            Stmt("range_for", group, t.line, (var, colon[1]))
                        )
                    else:
                        stmts.append(Stmt("for", group, t.line))
            else:
                kind = {"if": "if", "switch": "switch", "while": "while"}[t.text]
                stmts.append(Stmt(kind, group, t.line))
            i = close + 1
            continue
        if t.text == ";":
            flush()
            i += 1
            continue
        if t.text == "{":
            close = match_group(body, i)
            inner = body[i + 1 : close]
            if any(tk.text == ";" for tk in inner):
                # Real block (incl. lambda bodies): recurse into it.
                flush()
                stmts.extend(split_statements(inner))
                i = close + 1
                continue
            # Braced initializer: absorb into the current statement.
            cur.extend(body[i : close + 1])
            i = close + 1
            continue
        if t.text == "}":
            flush()
            i += 1
            continue
        cur.append(t)
        i += 1
    flush()
    return stmts


# ---------------------------------------------------------------------------
# Builtin frontend: taint propagation + rule checks
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class Env:
    """Per-function taint state plus the cross-file context."""

    tainted: dict[str, tuple[int, str, str | None]]  # name -> (line, desc, parent)
    aliases: dict[str, str]
    bare_roots: set[str]
    field_roots: set[str]
    taint_returning: set[str]


def _masked_spans(toks: list[Tok], value_mode: bool) -> list[tuple[int, int]]:
    spans = []
    n = len(toks)
    for i, t in enumerate(toks):
        if not t.is_ident or i + 1 >= n or toks[i + 1].text != "(":
            continue
        prev = toks[i - 1].text if i > 0 else ""
        if t.text == "PPDS_DECLASSIFY" and value_mode:
            spans.append((i, match_group(toks, i + 1)))
        elif t.text in SANITIZERS:
            spans.append((i, match_group(toks, i + 1)))
        elif t.text in PROJECTIONS and prev in (".", "->"):
            # Mask the receiver chain too: block_.size() is fully public.
            j = i - 2
            while j - 1 >= 0 and toks[j].is_ident and toks[j - 1].text in (".", "->"):
                j -= 2
            spans.append((max(j, 0), match_group(toks, i + 1)))
    return spans


def expr_taint(
    toks: list[Tok], env: Env, value_mode: bool
) -> tuple[str, int] | None:
    """First tainted atom in the expression, or None. value_mode=True lets
    PPDS_DECLASSIFY mask taint (value flows); timing rules pass False."""
    if not toks:
        return None
    spans = _masked_spans(toks, value_mode)

    def masked(idx: int) -> bool:
        return any(a <= idx <= b for a, b in spans)

    n = len(toks)
    for i, t in enumerate(toks):
        if not t.is_ident or masked(i):
            continue
        nxt = toks[i + 1].text if i + 1 < n else ""
        prev = toks[i - 1].text if i > 0 else ""
        if prev in (".", "->"):
            if nxt == "(":
                if t.text in env.taint_returning:
                    return (t.text + "()", t.line)
                continue
            if t.text in env.field_roots or t.text in env.bare_roots:
                return ("." + t.text, t.line)
            continue
        if nxt == "(":
            if t.text in env.taint_returning:
                return (t.text + "()", t.line)
            continue
        if t.text in env.tainted or t.text in env.bare_roots:
            return (t.text, t.line)
    return None


def _lhs_base(toks: list[Tok]) -> str | None:
    """Base variable written by the lvalue ending this token slice: strips a
    trailing []-group and walks member chains back to the root object."""
    i = len(toks) - 1
    while i >= 0 and toks[i].text == "]":
        depth = 0
        while i >= 0:
            if toks[i].text == "]":
                depth += 1
            elif toks[i].text == "[":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        i -= 1
    while i >= 0 and toks[i].text == ")":
        # e.g. (*ptr) or w.take() on the left — give up on the group.
        return None
    if i < 0 or not toks[i].is_ident:
        return None
    name = toks[i].text
    while i - 1 >= 0 and toks[i - 1].text in (".", "->"):
        i -= 2
        if i >= 0 and toks[i].is_ident:
            name = toks[i].text
        else:
            return name
    return name


def _taint(env: Env, name: str, line: int, desc: str, parent: str | None) -> bool:
    changed = False
    if name not in env.tainted:
        env.tainted[name] = (line, desc, parent)
        changed = True
    # A tainted view taints what it aliases (write-through the span).
    seen = {name}
    cur = name
    while cur in env.aliases and env.aliases[cur] not in seen:
        base = env.aliases[cur]
        seen.add(base)
        if base not in env.tainted:
            env.tainted[base] = (line, f"{base} <- view {cur}", cur)
            changed = True
        cur = base
    return changed


def _collect_decl_roots(stmt: Stmt, env: Env) -> bool:
    toks = stmt.toks
    texts = [t.text for t in toks]
    is_annot = "PPDS_SECRET" in texts
    is_secret_t = any(
        t.text == "Secret" and i + 1 < len(toks) and toks[i + 1].text == "<"
        for i, t in enumerate(toks)
    )
    if not (is_annot or is_secret_t):
        return False
    kind = "PPDS_SECRET root" if is_annot else "Secret<T> root"
    # Declared name: lvalue before '=', or identifier before ctor '('/'{',
    # else the last identifier of the statement.
    for k, t in enumerate(toks):
        if t.text == "=":
            name = _lhs_base(toks[:k])
            if name:
                return _taint(env, name, stmt.line, f"{kind} '{name}'", None)
            break
    for k, t in enumerate(toks):
        if t.text in ("(", "{") and k > 0 and toks[k - 1].is_ident:
            cand = toks[k - 1].text
            if cand not in ("Secret", "PPDS_SECRET") and (
                k < 2 or toks[k - 2].text not in (".", "->", "::")
            ):
                return _taint(env, cand, stmt.line, f"{kind} '{cand}'", None)
    name = _lhs_base(toks)
    if name and name not in ("PPDS_SECRET", "Secret"):
        return _taint(env, name, stmt.line, f"{kind} '{name}'", None)
    return False


def _param_roots(func: Func, env: Env) -> None:
    for chunk in split_top(func.params, ","):
        texts = [t.text for t in chunk]
        if "PPDS_SECRET" not in texts and not (
            "Secret" in texts and "<" in texts
        ):
            continue
        eq = next((k for k, t in enumerate(chunk) if t.text == "="), len(chunk))
        ids = [t for t in chunk[:eq] if t.is_ident]
        ids = [
            t for t in ids
            if t.text not in ("PPDS_SECRET", "Secret", "const", "std")
            and t.text not in CONTROL_KEYWORDS
        ]
        if ids:
            name = ids[-1].text
            _taint(env, name, ids[-1].line, f"PPDS_SECRET param '{name}'", None)


def _propagate_stmt(stmt: Stmt, env: Env) -> bool:
    toks = stmt.toks
    changed = False
    if stmt.kind == "range_for":
        var, container = stmt.extra
        atom = expr_taint(container, env, value_mode=True)
        if var and atom:
            changed |= _taint(
                env, var, stmt.line, f"{var} <- elements of {atom[0]}", atom[0]
            )
        return changed
    if stmt.kind in ("if", "switch", "while", "for"):
        return False
    if _collect_decl_roots(stmt, env):
        changed = True
    # Top-level assignment (first assign op at depth 0).
    depth = 0
    assign_at = -1
    for k, t in enumerate(toks):
        if t.text in "([{":
            depth += 1
        elif t.text in ")]}":
            depth -= 1
        elif depth == 0 and t.text in ASSIGN_OPS and t.text != "==":
            assign_at = k
            break
    if assign_at >= 0:
        lhs, rhs = toks[:assign_at], toks[assign_at + 1 :]
        atom = expr_taint(rhs, env, value_mode=True)
        base = _lhs_base(lhs)
        if atom and base and "PPDS_SECRET" not in (t.text for t in lhs):
            changed |= _taint(
                env, base, stmt.line, f"{base} <- {atom[0]}", atom[0]
            )
        # View alias: lhs = base.append_raw(...) / base.subspan(...)
        for k, t in enumerate(rhs):
            if (
                t.is_ident
                and t.text in ALIAS_METHODS
                and k > 0
                and rhs[k - 1].text in (".", "->")
                and k >= 2
                and rhs[k - 2].is_ident
                and base
            ):
                env.aliases[base] = rhs[k - 2].text
    # Ctor-style declaration: Type name(args) / Type name{args}.
    if assign_at < 0:
        for k, t in enumerate(toks):
            if (
                t.text in ("(", "{")
                and k >= 2
                and toks[k - 1].is_ident
                and toks[k - 2].is_ident
                and toks[k - 1].text not in CONTROL_KEYWORDS
                and toks[k - 2].text not in CONTROL_KEYWORDS
            ):
                close = match_group(toks, k)
                atom = expr_taint(toks[k + 1 : close], env, value_mode=True)
                if atom:
                    changed |= _taint(
                        env,
                        toks[k - 1].text,
                        stmt.line,
                        f"{toks[k - 1].text} <- {atom[0]}",
                        atom[0],
                    )
                break
    # Write-through helpers: store_le64(buf, x) taints buf.
    for k, t in enumerate(toks):
        if t.is_ident and t.text in WRITE_THROUGH and k + 1 < len(toks) and toks[k + 1].text == "(":
            close = match_group(toks, k + 1)
            args = split_top(toks[k + 2 : close], ",")
            if len(args) >= 2:
                atom = None
                for arg in args[1:]:
                    atom = expr_taint(arg, env, value_mode=True)
                    if atom:
                        break
                if atom:
                    base = next((a.text for a in args[0] if a.is_ident and a.text != "std"), None)
                    if base:
                        changed |= _taint(
                            env, base, stmt.line,
                            f"{base} <- {t.text}(.., {atom[0]})", atom[0],
                        )
    # Receiver tainting: w.write(secret) taints w (unless sanitizer/projection).
    for k, t in enumerate(toks):
        if (
            t.is_ident
            and k + 1 < len(toks)
            and toks[k + 1].text == "("
            and k > 0
            and toks[k - 1].text in (".", "->")
            and k >= 2
            and toks[k - 2].is_ident
            and t.text not in SANITIZERS
            and t.text not in PROJECTIONS
            and t.text not in SINKS
            and t.text not in PURE_METHODS
        ):
            close = match_group(toks, k + 1)
            atom = expr_taint(toks[k + 2 : close], env, value_mode=True)
            if atom:
                recv = toks[k - 2].text
                changed |= _taint(
                    env, recv, stmt.line,
                    f"{recv} <- .{t.text}({atom[0]})", atom[0],
                )
    return changed


def _chain(env: Env, atom: str, line: int) -> list[str]:
    steps = [f"{atom} at line {line}"]
    cur = atom.strip(".").rstrip("()")
    seen = set()
    while cur in env.tainted and cur not in seen and len(steps) < MAX_CHAIN_STEPS:
        seen.add(cur)
        ln, desc, parent = env.tainted[cur]
        steps.append(f"{desc} (line {ln})")
        if parent is None:
            break
        cur = parent.strip(".").rstrip("()")
    return steps


def _check_rules(func: Func, stmts: list[Stmt], env: Env) -> list[Finding]:
    out: list[Finding] = []

    def add(rule: str, line: int, detail: str, atom: tuple[str, int]):
        out.append(
            Finding(
                path=func.path,
                line=line,
                rule=rule,
                function=func.display,
                message=f"{RULES[rule]} ({detail})",
                chain=_chain(env, atom[0], atom[1]),
            )
        )

    for stmt in stmts:
        toks = stmt.toks
        if stmt.kind in ("if", "switch"):
            atom = expr_taint(toks, env, value_mode=False)
            if atom:
                add("secret-branch", stmt.line, f"condition uses '{atom[0]}'", atom)
            continue
        if stmt.kind in ("while", "for"):
            atom = expr_taint(toks, env, value_mode=False)
            if atom:
                add("secret-loop-bound", stmt.line, f"bound uses '{atom[0]}'", atom)
            continue
        if stmt.kind == "range_for":
            continue
        # Ternary: cond ? a : b — flag a tainted condition.
        for k, t in enumerate(toks):
            if t.text != "?":
                continue
            j = k - 1
            depth = 0
            start = 0
            while j >= 0:
                tx = toks[j].text
                if tx in ")]}":
                    depth += 1
                elif tx in "([{":
                    if depth == 0:
                        start = j + 1
                        break
                    depth -= 1
                elif depth == 0 and tx in (",", "=", ";", "&&", "||", "return"):
                    start = j + 1
                    break
                j -= 1
            atom = expr_taint(toks[start:k], env, value_mode=False)
            if atom:
                add("secret-branch", stmt.line, f"ternary condition uses '{atom[0]}'", atom)
        # Indexing: arr[expr] with tainted expr.
        for k, t in enumerate(toks):
            if t.text != "[":
                continue
            prev = toks[k - 1].text if k > 0 else ""
            if prev not in (")", "]") and not (k > 0 and toks[k - 1].is_ident):
                continue  # lambda capture / attribute, not a subscript
            close = match_group(toks, k)
            atom = expr_taint(toks[k + 1 : close], env, value_mode=False)
            if atom:
                arr = toks[k - 1].text if toks[k - 1].is_ident else "<expr>"
                add("secret-index", toks[k].line, f"{arr}[..{atom[0]}..]", atom)
        # Division / modulo with a tainted operand.
        for k, t in enumerate(toks):
            if t.text not in ("/", "%", "/=", "%="):
                continue
            left_start = k - 1
            if left_start >= 0 and toks[left_start].text in (")", "]"):
                depth = 0
                j = left_start
                while j >= 0:
                    if toks[j].text in (")", "]"):
                        depth += 1
                    elif toks[j].text in ("(", "["):
                        depth -= 1
                        if depth == 0:
                            break
                    j -= 1
                left_start = j
            while left_start - 1 >= 0 and toks[left_start - 1].text in (".", "->", "::"):
                left_start -= 2
            left = toks[max(left_start, 0) : k]
            right_end = k + 2
            if k + 1 < len(toks) and toks[k + 1].text in ("(",):
                right_end = match_group(toks, k + 1) + 1
            else:
                while right_end < len(toks) and toks[right_end].text in (".", "->", "::") :
                    right_end += 2
            right = toks[k + 1 : min(right_end, len(toks))]
            # Evaluate the operands separately: concatenating the slices can
            # put an identifier next to '(' and disguise it as a call.
            atom = expr_taint(left, env, value_mode=False) or expr_taint(
                right, env, value_mode=False
            )
            if atom:
                add("secret-divmod", t.line, f"operand '{atom[0]}'", atom)
        # Sinks: send()/printf-family with tainted args; cout/cerr streams.
        for k, t in enumerate(toks):
            if t.is_ident and t.text in SINKS and k + 1 < len(toks) and toks[k + 1].text == "(":
                close = match_group(toks, k + 1)
                atom = expr_taint(toks[k + 2 : close], env, value_mode=True)
                if atom:
                    add("secret-sink", t.line, f"{t.text}(..{atom[0]}..)", atom)
            if t.is_ident and t.text in ("cout", "cerr", "clog"):
                atom = expr_taint(toks[k + 1 :], env, value_mode=True)
                if atom:
                    add("secret-sink", t.line, f"std::{t.text} << {atom[0]}", atom)
                break
    return out


def analyze_function(
    func: Func,
    bare_roots: set[str],
    field_roots: set[str],
    taint_returning: set[str],
) -> tuple[list[Finding], bool]:
    """Returns (findings, returns_tainted_value)."""
    env = Env(
        tainted={},
        aliases={},
        bare_roots=bare_roots,
        field_roots=field_roots,
        taint_returning=taint_returning,
    )
    _param_roots(func, env)
    stmts = split_statements(func.body)
    for _ in range(MAX_FIXPOINT_ITERS):
        changed = False
        for stmt in stmts:
            changed |= _propagate_stmt(stmt, env)
        if not changed:
            break
    findings = _check_rules(func, stmts, env)
    returns_tainted = any(
        stmt.kind == "return"
        and expr_taint(stmt.toks[1:], env, value_mode=True) is not None
        for stmt in stmts
    )
    return findings, returns_tainted


def scan_global_roots(
    files: dict[Path, str]
) -> dict[str, tuple[set[str], set[str]]]:
    """Names annotated PPDS_SECRET, scoped by file STEM so `slots_` annotated
    in ot.hpp taints ot.cpp but not an unrelated `slots_` in ompe.cpp. Names
    ending in '_' (members) taint bare uses; others taint field accesses."""
    by_stem: dict[str, tuple[set[str], set[str]]] = {}
    for path, text in files.items():
        bare, field = by_stem.setdefault(path.stem, (set(), set()))
        for m in _ANNOT_DECL.finditer(text):
            name = _declared_name(m.group(1))
            if not name or name == "PPDS_SECRET":
                continue
            (bare if name.endswith("_") else field).add(name)
    return by_stem


def builtin_scan(paths: list[Path], root: Path) -> list[Finding]:
    files: dict[Path, str] = {}
    for path in paths:
        try:
            raw = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            print(f"taint_analyzer: cannot read {path}: {exc}", file=sys.stderr)
            sys.exit(2)
        files[path] = strip_comments_strings(raw)

    roots_by_stem = scan_global_roots(files)
    funcs: list[Func] = []
    for path, text in files.items():
        funcs.extend(extract_functions(lex(text), path))

    def roots_for(func: Func) -> tuple[set[str], set[str]]:
        return roots_by_stem.get(func.path.stem, (set(), set()))

    # One level of call summaries, to a fixpoint: a function whose return
    # value is tainted taints its call sites everywhere.
    taint_returning: set[str] = set()
    for _ in range(MAX_SUMMARY_ROUNDS):
        new = set(taint_returning)
        for func in funcs:
            bare, field = roots_for(func)
            _, rt = analyze_function(func, bare, field, taint_returning)
            if rt and func.name not in SANITIZERS:
                new.add(func.name)
        if new == taint_returning:
            break
        taint_returning = new

    findings: list[Finding] = []
    for func in funcs:
        bare, field = roots_for(func)
        f, _ = analyze_function(func, bare, field, taint_returning)
        findings.extend(f)

    # Apply suppressions from the raw (comment-bearing) sources.
    kept: list[Finding] = []
    raw_cache: dict[Path, tuple[dict[int, set[str]], set[str]]] = {}
    for finding in findings:
        if finding.path not in raw_cache:
            raw_cache[finding.path] = collect_suppressions(
                finding.path.read_text(encoding="utf-8", errors="replace")
            )
        per_line, per_file = raw_cache[finding.path]
        if finding.rule in per_file:
            continue
        allowed = per_line.get(finding.line, set()) | per_line.get(
            finding.line - 1, set()
        )
        if finding.rule in allowed:
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (str(f.path), f.line, f.rule))
    # Deduplicate identical (path, line, rule) hits from repeated atoms.
    seen: set[tuple[str, int, str]] = set()
    out = []
    for f in kept:
        k = (str(f.path), f.line, f.rule)
        if k in seen:
            continue
        seen.add(k)
        out.append(f)
    return out


# ---------------------------------------------------------------------------
# libclang frontend (best-effort; used when the bindings are installed)
# ---------------------------------------------------------------------------


def load_libclang():
    """Returns the clang.cindex module with a working library, or None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    candidates = [None, "libclang.so", "libclang-14.so.1", "libclang.so.1"]
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex
        except Exception:  # noqa: BLE001 -- probing for a usable library
            continue
    return None


def compile_args_for(path: Path, compdb: dict[str, list[str]]) -> list[str]:
    args = compdb.get(str(path))
    if args:
        return args
    return ["-std=c++20", "-Iinclude", "-xc++"]


def load_compile_commands(path: Path) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {}
    try:
        entries = json.loads(path.read_text())
    except (OSError, ValueError):
        return out
    for entry in entries:
        file = str(Path(entry.get("directory", ".")) / entry["file"])
        cmd = entry.get("arguments") or entry.get("command", "").split()
        # Drop the compiler, -c/-o pairs and the source file itself.
        args = []
        skip = False
        for a in cmd[1:]:
            if skip:
                skip = False
                continue
            if a in ("-c", "-o"):
                skip = a == "-o"
                continue
            if a.endswith((".cpp", ".cc", ".cxx")):
                continue
            args.append(a)
        out[str(Path(entry["file"]).resolve())] = args
        out[file] = args
    return out


def libclang_scan(
    paths: list[Path], root: Path, cindex, compdb: dict[str, list[str]]
) -> list[Finding]:
    """AST pass: same five rules, driven by [[clang::annotate("ppds::secret")]].
    Best-effort — per-file failures degrade to a warning, not a crash."""
    findings: list[Finding] = []
    index = cindex.Index.create()
    ck = cindex.CursorKind

    def is_secret_decl(cur) -> bool:
        if "Secret<" in (cur.type.spelling or ""):
            return True
        return any(
            c.kind == ck.ANNOTATE_ATTR and c.spelling == "ppds::secret"
            for c in cur.get_children()
        )

    def extent_has(cur, word: str) -> bool:
        try:
            return any(t.spelling == word for t in cur.get_tokens())
        except Exception:  # noqa: BLE001
            return False

    def refs(cur, tainted: set[str]) -> bool:
        if cur is None:
            return False
        if cur.kind == ck.DECL_REF_EXPR or cur.kind == ck.MEMBER_REF_EXPR:
            ref = cur.referenced
            if ref is not None and ref.get_usr() in tainted:
                return True
        return any(refs(c, tainted) for c in cur.get_children())

    def walk_function(fn, tainted: set[str], func_name: str, path: Path):
        def visit(cur):
            kind = cur.kind
            line = cur.location.line
            if kind in (ck.VAR_DECL, ck.PARM_DECL) and is_secret_decl(cur):
                tainted.add(cur.get_usr())
            if kind == ck.BINARY_OPERATOR or kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                kids = list(cur.get_children())
                if len(kids) == 2:
                    op = ""
                    try:
                        toks = [t.spelling for t in cur.get_tokens()]
                        for cand in ("/=", "%=", "/", "%", "="):
                            if cand in toks:
                                op = cand
                                break
                    except Exception:  # noqa: BLE001
                        op = ""
                    if op in ("/", "%", "/=", "%=") and (
                        refs(kids[0], tainted) or refs(kids[1], tainted)
                    ):
                        findings.append(
                            Finding(path, line, "secret-divmod", func_name,
                                    RULES["secret-divmod"]))
                    if op in ("=", "/=", "%=") and refs(kids[1], tainted):
                        lhs_ref = kids[0]
                        while lhs_ref is not None and lhs_ref.kind not in (
                            ck.DECL_REF_EXPR, ck.MEMBER_REF_EXPR
                        ):
                            kids2 = list(lhs_ref.get_children())
                            lhs_ref = kids2[0] if kids2 else None
                        if lhs_ref is not None and lhs_ref.referenced is not None:
                            if not extent_has(cur, "PPDS_DECLASSIFY"):
                                tainted.add(lhs_ref.referenced.get_usr())
            if kind in (ck.IF_STMT, ck.SWITCH_STMT, ck.CONDITIONAL_OPERATOR):
                kids = list(cur.get_children())
                if kids and refs(kids[0], tainted):
                    findings.append(
                        Finding(path, line, "secret-branch", func_name,
                                RULES["secret-branch"]))
            if kind in (ck.WHILE_STMT, ck.FOR_STMT, ck.DO_STMT):
                kids = list(cur.get_children())
                cond = kids[1] if kind == ck.FOR_STMT and len(kids) > 1 else (
                    kids[0] if kids else None)
                if cond is not None and refs(cond, tainted):
                    findings.append(
                        Finding(path, line, "secret-loop-bound", func_name,
                                RULES["secret-loop-bound"]))
            if kind == ck.ARRAY_SUBSCRIPT_EXPR:
                kids = list(cur.get_children())
                if len(kids) == 2 and refs(kids[1], tainted):
                    findings.append(
                        Finding(path, line, "secret-index", func_name,
                                RULES["secret-index"]))
            if kind == ck.CALL_EXPR and cur.spelling in SINKS:
                if refs(cur, tainted) and not extent_has(cur, "PPDS_DECLASSIFY"):
                    findings.append(
                        Finding(path, line, "secret-sink", func_name,
                                RULES["secret-sink"]))
            for c in cur.get_children():
                visit(c)

        visit(fn)

    for path in paths:
        if path.suffix not in (".cpp", ".cc", ".cxx"):
            continue  # headers are analyzed through their includers
        try:
            tu = index.parse(str(path), args=compile_args_for(path, compdb))
        except Exception as exc:  # noqa: BLE001 -- degrade per file
            print(f"taint_analyzer: libclang parse failed for {path}: {exc}",
                  file=sys.stderr)
            continue

        def collect(cur, tainted: set[str]):
            if cur.kind in (ck.FIELD_DECL, ck.VAR_DECL) and is_secret_decl(cur):
                tainted.add(cur.get_usr())
            for c in cur.get_children():
                collect(c, tainted)

        tainted: set[str] = set()
        collect(tu.cursor, tainted)
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD, ck.CONSTRUCTOR) and \
                    cur.is_definition() and cur.location.file and \
                    Path(str(cur.location.file)).resolve() == path.resolve():
                walk_function(cur, set(tainted), cur.spelling, path)

    # Suppressions work identically for both frontends.
    kept = []
    raw_cache: dict[Path, tuple[dict[int, set[str]], set[str]]] = {}
    for finding in findings:
        if finding.path not in raw_cache:
            raw_cache[finding.path] = collect_suppressions(
                finding.path.read_text(encoding="utf-8", errors="replace"))
        per_line, per_file = raw_cache[finding.path]
        if finding.rule in per_file:
            continue
        if finding.rule in per_line.get(finding.line, set()) | per_line.get(
                finding.line - 1, set()):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return kept


# ---------------------------------------------------------------------------
# Baseline, reporting, self-test, CLI
# ---------------------------------------------------------------------------

_BASELINE_LINE = re.compile(
    r"^(?P<path>[^|]+)\|(?P<func>[^|]+)\|(?P<rule>[a-z-]+)\|(?P<max>\d+)"
    r"\s+--\s+(?P<why>.+)$"
)


def load_baseline(path: Path) -> dict[tuple[str, str, str], int]:
    out: dict[tuple[str, str, str], int] = {}
    if not path.is_file():
        return out
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _BASELINE_LINE.match(line)
        if not m:
            print(f"taint_analyzer: malformed baseline line {path}:{lineno}: "
                  f"{line!r}", file=sys.stderr)
            sys.exit(2)
        out[(m["path"], m["func"], m["rule"])] = int(m["max"])
    return out


def apply_baseline(
    findings: list[Finding], baseline: dict[tuple[str, str, str], int], root: Path
) -> tuple[list[Finding], list[str]]:
    """Returns (unbaselined findings, errors for over-budget/stale entries)."""
    by_key: dict[tuple[str, str, str], list[Finding]] = {}
    for f in findings:
        by_key.setdefault(f.key(root), []).append(f)
    errors: list[str] = []
    remaining: list[Finding] = []
    for key, fs in by_key.items():
        cap = baseline.get(key)
        if cap is None:
            remaining.extend(fs)
        elif len(fs) > cap:
            errors.append(
                f"baseline exceeded for {'|'.join(key)}: {len(fs)} findings, "
                f"budget {cap} (zero-growth: fix the new flow, don't raise it)")
            remaining.extend(fs)
    for key, cap in baseline.items():
        if key not in by_key:
            errors.append(
                f"stale baseline entry {'|'.join(key)}|{cap}: no findings "
                f"match — delete the line (burn-down is one-way)")
    return remaining, errors


def render(findings: list[Finding], root: Path) -> str:
    lines = []
    for f in findings:
        try:
            shown = f.path.relative_to(root)
        except ValueError:
            shown = f.path
        lines.append(f"{shown}:{f.line}: [{f.rule}] in {f.function}: {f.message}")
        for step in f.chain:
            lines.append(f"    {step}")
    return "\n".join(lines)


MUST_FLAG = re.compile(r"MUST-FLAG\(([a-z-]+)\)")


def self_test(root: Path) -> int:
    fixture_dir = root / "tools" / "lint" / "fixtures" / "taint"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + sorted(fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"taint_analyzer: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    findings = builtin_scan(fixtures, root)
    by_loc: dict[tuple[Path, int], set[str]] = {}
    for f in findings:
        by_loc.setdefault((f.path, f.line), set()).add(f.rule)
    ok = True
    fired = {f.rule for f in findings}
    missing = set(RULES) - fired
    if missing:
        print(f"taint_analyzer: self-test FAILED: rules never fired: "
              f"{sorted(missing)}")
        ok = False
    for path in fixtures:
        for i, line in enumerate(path.read_text().splitlines(), start=1):
            m = MUST_FLAG.search(line)
            if m:
                got = by_loc.get((path, i), set())
                if m.group(1) not in got:
                    print(f"taint_analyzer: self-test FAILED: {path.name}:{i} "
                          f"expected [{m.group(1)}], got {sorted(got) or 'nothing'}")
                    ok = False
            if "MUST-NOT-FLAG" in line:
                got = by_loc.get((path, i), set())
                if got:
                    print(f"taint_analyzer: self-test FAILED: {path.name}:{i} "
                          f"must stay silent but fired {sorted(got)}")
                    ok = False
    if ok:
        print(f"taint_analyzer: self-test ok ({len(findings)} seeded findings, "
              f"all {len(RULES)} rules fire, suppressed lines silent)")
    return 0 if ok else 2


def collect_files(root: Path) -> list[Path]:
    files = []
    for rel in SCAN_DIRS:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                files.append(path)
    return files


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify every rule fires on the seeded fixtures (builtin frontend)")
    parser.add_argument(
        "--frontend", choices=("auto", "builtin", "libclang"), default="auto",
        help="auto picks libclang when the bindings are installed")
    parser.add_argument(
        "--compile-commands", type=Path, default=None,
        help="compile_commands.json for the libclang frontend "
             "(default: <root>/build/compile_commands.json)")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file (default: <root>/tools/lint/taint_baseline.txt)")
    parser.add_argument(
        "--report", type=Path, default=None,
        help="also write the full findings report (pre-baseline) to this file")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="explicit files to scan (default: the security-critical modules)")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    paths = [Path(p) for p in args.paths] or collect_files(args.root)
    if not paths:
        print("taint_analyzer: nothing to scan", file=sys.stderr)
        return 2

    frontend = args.frontend
    cindex = None
    if frontend in ("auto", "libclang"):
        cindex = load_libclang()
        if cindex is None:
            if frontend == "libclang":
                print("taint_analyzer: libclang frontend requested but the "
                      "python clang bindings / libclang library are not "
                      "available", file=sys.stderr)
                return 2
            frontend = "builtin"
        else:
            frontend = "libclang"

    if frontend == "libclang":
        cc_path = args.compile_commands or (args.root / "build" / "compile_commands.json")
        compdb = load_compile_commands(cc_path)
        findings = libclang_scan(paths, args.root, cindex, compdb)
    else:
        findings = builtin_scan(paths, args.root)

    if args.report:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(
            render(findings, args.root) + ("\n" if findings else "")
            or "taint_analyzer: clean\n")

    baseline_path = args.baseline or (args.root / "tools" / "lint" / "taint_baseline.txt")
    baseline = load_baseline(baseline_path)
    remaining, errors = apply_baseline(findings, baseline, args.root)

    if remaining:
        print(render(remaining, args.root))
    for err in errors:
        print(f"taint_analyzer: {err}")
    baselined = len(findings) - len(remaining)
    if remaining or errors:
        print(f"taint_analyzer: {len(remaining)} finding(s) "
              f"({baselined} baselined) in {len(paths)} file(s) "
              f"[{frontend} frontend]")
        return 1
    print(f"taint_analyzer: clean ({len(paths)} files scanned, "
          f"{baselined} baselined finding(s)) [{frontend} frontend]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
