#!/usr/bin/env python3
"""Crypto-hygiene linter for the ppds protocol stack.

Scans the security-critical modules (src/crypto, src/ompe, src/core and their
include/ counterparts) for patterns that void the protocol's security
arguments even when the protocol itself is correct:

  insecure-rand    libc rand()/srand() — not a CSPRNG; all randomness must
                   come from ppds::Rng (experiments) or ppds::crypto::Prg
                   (anything secret).
  memcmp-on-secret std::memcmp in crypto code — early-exit comparison leaks
                   the matching-prefix length through timing; use
                   ppds::ct_equal (include/ppds/common/ct.hpp).
  secret-compare   operator==/!= applied to a secret-named buffer (key,
                   secret, seed, pad) — same timing leak as memcmp.
  secret-stream    std::cout/std::cerr/printf of a secret-named value — key
                   material must never reach logs or consoles.
  missing-wipe     a file that declares an owning secret-named buffer
                   (Bytes/Digest/uint8_t arrays named *key*, *secret*,
                   *seed*, *pad*) but never calls secure_wipe — dead-store
                   elimination leaves the bytes in freed memory. Applies to
                   every .cpp, and to any HEADER without a companion .cpp of
                   the same stem: a header whose class is implemented out of
                   line delegates wiping to its .cpp destructor (which this
                   rule checks there), but a header-ONLY class must wipe in
                   its inline destructor.
  abort-without-wipe
                   a .cpp file that defines an abort() method but neither
                   calls secure_wipe nor delegates to another abort() —
                   an abort path that forgets its key material leaves
                   secrets behind exactly when the protocol is in its least
                   trusted state (docs/PROTOCOL.md §7).

Suppressions (each must carry a justification in review; the budget is
zero-growth):

  // hygiene: allow(<rule-id>)       on the offending line or the line above
  // hygiene: allow-file(<rule-id>)  anywhere in the file, silences the rule
                                     for the whole file

Exit status: 0 clean, 1 findings, 2 usage/self-test failure.

`--self-test` runs every rule against the seeded negative fixture under
tools/lint/fixtures/ and fails unless each rule fires (and suppressed lines
stay silent) — so CI notices if a refactor of this script silently disables
a rule.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SCAN_DIRS = [
    "src/crypto",
    "src/ompe",
    "src/core",
    "src/net",
    "src/server",
    "include/ppds/crypto",
    "include/ppds/ompe",
    "include/ppds/core",
    "include/ppds/net",
    "include/ppds/server",
]

SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".h", ".hh"}

SECRET_NAME = r"\w*(?:key|secret|seed|pad)\w*"

ALLOW_LINE = re.compile(r"//\s*hygiene:\s*allow\(([a-z-]+)\)")
ALLOW_FILE = re.compile(r"//\s*hygiene:\s*allow-file\(([a-z-]+)\)")

# Line-level rules: (rule-id, compiled regex, message).
LINE_RULES = [
    (
        "insecure-rand",
        re.compile(r"(?<![\w:.])s?rand\s*\("),
        "libc rand()/srand() is not a CSPRNG; use ppds::Rng or ppds::crypto::Prg",
    ),
    (
        "memcmp-on-secret",
        re.compile(r"\bmemcmp\s*\("),
        "memcmp leaks the matching-prefix length through timing; use ppds::ct_equal",
    ),
    (
        "secret-compare",
        re.compile(
            r"(?:\b" + SECRET_NAME + r"\s*[=!]=)|(?:[=!]=\s*" + SECRET_NAME + r"\b)"
        ),
        "==/!= on a secret-named buffer is not constant-time; use ppds::ct_equal",
    ),
    (
        "secret-stream",
        re.compile(
            r"(?:std::c(?:out|err)\s*<<|(?<![\w:])f?printf\s*\().*\b" + SECRET_NAME + r"\b"
        ),
        "secret-named value written to a stream; key material must not be logged",
    ),
]

# File-level rule (every .cpp, plus headers WITHOUT a companion .cpp of the
# same stem — out-of-line classes wipe in their .cpp destructor, but a
# header-only class has nowhere else to do it).
SECRET_DECL = re.compile(
    r"\b(?:Bytes|Digest|std::array<\s*std::uint8_t|std::uint8_t)\b[^;=\n(){]*\b"
    + SECRET_NAME
    + r"\b(?!\s*\()"  # a trailing '(' means this is a function name, not a buffer
)
WIPE_CALL = re.compile(r"\bsecure_wipe")

# File-level rule: an abort() DEFINITION (Class::abort) must wipe something
# or delegate to a member's abort() that does.
ABORT_DEF = re.compile(r"\w+::abort\s*\(")
ABORT_DELEGATE = re.compile(r"(?:\.|->)\s*abort\s*\(")


def strip_strings(line: str) -> str:
    """Blanks out string/char literals so their contents can't trip rules."""
    return re.sub(r'"(?:[^"\\]|\\.)*"|\'(?:[^\'\\]|\\.)*\'', '""', line)


def find_violations(
    path: Path, text: str, cpp_stems: frozenset[str] = frozenset()
) -> list[tuple[Path, int, str, str]]:
    lines = text.splitlines()
    file_allowed = {m.group(1) for m in ALLOW_FILE.finditer(text)}
    out = []
    for i, raw in enumerate(lines):
        allowed = set(file_allowed)
        for src in (raw, lines[i - 1] if i > 0 else ""):
            m = ALLOW_LINE.search(src)
            if m:
                allowed.add(m.group(1))
        code = strip_strings(raw)
        # Don't let the comment text of a suppression (or any comment) fire rules.
        code = re.sub(r"//.*$", "", code) if "hygiene:" in code else code
        for rule, pattern, message in LINE_RULES:
            if rule in allowed:
                continue
            if pattern.search(code):
                out.append((path, i + 1, rule, message))

    is_tu = path.suffix in {".cpp", ".cc", ".cxx"}
    # A header with a companion TU delegates wiping to that TU's destructor
    # (scanned on its own); a header-only file owns the wipe duty itself.
    owns_wipe_duty = is_tu or path.stem not in cpp_stems
    if owns_wipe_duty and "missing-wipe" not in file_allowed:
        decl_line = None
        for i, raw in enumerate(lines):
            code = strip_strings(raw)
            if SECRET_DECL.search(code) and not ALLOW_LINE.search(raw):
                decl_line = i + 1
                break
        if decl_line is not None and not WIPE_CALL.search(text):
            out.append(
                (
                    path,
                    decl_line,
                    "missing-wipe",
                    "file declares secret-named buffers but never calls "
                    "ppds::secure_wipe on anything",
                )
            )

    if (
        path.suffix in {".cpp", ".cc", ".cxx"}
        and "abort-without-wipe" not in file_allowed
    ):
        abort_line = None
        for i, raw in enumerate(lines):
            if ABORT_DEF.search(strip_strings(raw)) and not ALLOW_LINE.search(raw):
                abort_line = i + 1
                break
        if (
            abort_line is not None
            and not WIPE_CALL.search(text)
            and not ABORT_DELEGATE.search(text)
        ):
            out.append(
                (
                    path,
                    abort_line,
                    "abort-without-wipe",
                    "abort() neither secure_wipes secret buffers nor "
                    "delegates to an abort() that does; aborted sessions "
                    "must leave no key material behind",
                )
            )
    return out


def scan_paths(
    paths: list[Path], cpp_stems: frozenset[str] = frozenset()
) -> list[tuple[Path, int, str, str]]:
    violations = []
    for path in paths:
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            print(f"secret_hygiene: cannot read {path}: {exc}", file=sys.stderr)
            sys.exit(2)
        violations.extend(find_violations(path, text, cpp_stems))
    return violations


def companion_stems(root: Path, extra: list[Path]) -> frozenset[str]:
    """Stems of every TU in the scan tree (plus any explicitly given), so a
    header can be matched with its out-of-line implementation even when only
    the header is being scanned."""
    stems = {p.stem for p in extra if p.suffix in {".cpp", ".cc", ".cxx"}}
    stems.update(
        p.stem for p in collect_files(root) if p.suffix in {".cpp", ".cc", ".cxx"}
    )
    return frozenset(stems)


def collect_files(root: Path) -> list[Path]:
    files = []
    for rel in SCAN_DIRS:
        base = root / rel
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                files.append(path)
    return files


def self_test(root: Path) -> int:
    fixture_dir = root / "tools" / "lint" / "fixtures"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + sorted(fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"secret_hygiene: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2
    # Companion matching is tested against the FIXTURE set only (a fixture
    # header must not be excused by a same-stem file in the real tree).
    fixture_stems = frozenset(
        p.stem for p in fixtures if p.suffix in {".cpp", ".cc", ".cxx"}
    )
    violations = scan_paths(fixtures, fixture_stems)
    fired = {rule for (_, _, rule, _) in violations}
    expected = {rule for rule, _, _ in LINE_RULES} | {
        "missing-wipe",
        "abort-without-wipe",
    }
    missing = expected - fired
    ok = True
    if missing:
        print(f"secret_hygiene: self-test FAILED: rules never fired: {sorted(missing)}")
        ok = False
    # The fixture marks lines that must stay silent (suppression coverage).
    for path in fixtures:
        for i, line in enumerate(path.read_text().splitlines()):
            if "MUST-NOT-FLAG" in line:
                hits = [v for v in violations if v[0] == path and v[1] == i + 1]
                if hits:
                    print(
                        f"secret_hygiene: self-test FAILED: suppressed line "
                        f"{path.name}:{i + 1} was flagged: {hits}"
                    )
                    ok = False
    if ok:
        print(
            f"secret_hygiene: self-test ok "
            f"({len(violations)} seeded findings, all {len(expected)} rules fire)"
        )
    return 0 if ok else 2


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify every rule fires on the seeded negative fixture")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="explicit files to scan (default: the security-critical modules)")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    files = args.paths or collect_files(args.root)
    if not files:
        print("secret_hygiene: nothing to scan", file=sys.stderr)
        return 2
    paths = [Path(p) for p in files]
    violations = scan_paths(paths, companion_stems(args.root, paths))
    for path, lineno, rule, message in violations:
        try:
            shown = path.relative_to(args.root)
        except ValueError:
            shown = path
        print(f"{shown}:{lineno}: [{rule}] {message}")
    if violations:
        print(f"secret_hygiene: {len(violations)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"secret_hygiene: clean ({len(files)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
