// Negative fixture for the abort-without-wipe rule of secret_hygiene.py.
// NEVER compiled or linked — purely textual. The class below poisons itself
// on a failed round trip but forgets to wipe the correlated randomness it
// holds, which is exactly the bug the rule exists to catch: the abort path
// runs when the peer is least trusted, and the pads survive in freed memory.

struct ForgetfulEngine {
  void abort() noexcept;
  bool aborted_ = false;
};

// [abort-without-wipe] wipes nothing, delegates nowhere.
void ForgetfulEngine::abort() noexcept {
  aborted_ = true;
}
