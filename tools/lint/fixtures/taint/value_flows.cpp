// Negative fixture for tools/lint/taint_analyzer.py — value flows: sinks,
// declassification, sanitizers, call summaries, write-through and span
// aliases. NEVER compiled or linked; purely textual.

// [secret-sink] annotated parameter straight into a wire send.
void leak_param(Channel& channel, PPDS_SECRET const Bytes& session_key) {
  channel.send(session_key);  // MUST-FLAG(secret-sink)
}

// [secret-sink] printf-family format sink.
void leak_printf() {
  PPDS_SECRET unsigned long long s = 42;
  printf("s=%llu\n", s);  // MUST-FLAG(secret-sink)
}

// [secret-sink] iostream sink.
void leak_stream() {
  PPDS_SECRET int s = 9;
  std::cout << s;  // MUST-FLAG(secret-sink)
}

// Declassified sends are the sanctioned exit and stay silent.
void blinded_send(Channel& channel) {
  PPDS_SECRET int s = 5;
  channel.send(PPDS_DECLASSIFY(s ^ 0x55, "one-time-pad masked"));  // MUST-NOT-FLAG
}

// Sanitizers launder taint: a hash of a secret is safe to transmit.
void hashed_send(Channel& channel) {
  PPDS_SECRET Bytes seed_material = make();
  channel.send(sha256(seed_material));  // MUST-NOT-FLAG
}

// Projections reveal only public metadata of a secret container.
void public_metadata(Channel& channel) {
  PPDS_SECRET Bytes pad = make();
  if (pad.size() > 16) {  // MUST-NOT-FLAG
    channel.send(pad.size());  // MUST-NOT-FLAG
  }
}

// [secret-sink] one level of call summaries: the callee returns a tainted
// value, so the caller's local is tainted without any annotation here.
int derive_subkey() {
  PPDS_SECRET int master = 77;
  return master * 3;
}

void summary_leak(Channel& channel) {
  int sub = derive_subkey();
  channel.send(sub);  // MUST-FLAG(secret-sink)
}

// [secret-sink] write-through helper: serializing a secret into a buffer
// taints the buffer, which then reaches the wire.
void writethrough_leak(Channel& channel) {
  PPDS_SECRET unsigned long long k = 11;
  unsigned char buf[8];
  store_le64(buf, k);
  channel.send(buf);  // MUST-FLAG(secret-sink)
}

// [secret-sink] span alias: a view returned by append_raw writes through to
// the owning writer, so sending the writer's bytes leaks the secret.
void alias_leak(Channel& channel, ByteWriter& w) {
  PPDS_SECRET unsigned long long k = 13;
  auto body = w.append_raw(8);
  store_le64(body, k);
  channel.send(w.take());  // MUST-FLAG(secret-sink)
}

// Member roots declared in a struct: names ending in '_' taint bare uses.
struct PrgLike {
  PPDS_SECRET unsigned char seed_[32];
  unsigned char out_[32];
};

// [secret-branch] bare member-root use inside any function in the tree.
int member_root_branch(PrgLike& prg) {
  if (prg.seed_[0] != 0) {  // MUST-FLAG(secret-branch)
    return 1;
  }
  return 0;
}

// Field roots (no trailing underscore) taint only field accesses.
struct SlotLike {
  PPDS_SECRET unsigned r0;
  PPDS_SECRET unsigned r1;
};

int field_root_branch(const SlotLike& slot) {
  if (slot.r0 != slot.r1) {  // MUST-FLAG(secret-branch)
    return 1;
  }
  // A plain variable that happens to share the field name is NOT tainted.
  int r0 = 3;
  return r0;  // MUST-NOT-FLAG
}

// Receiver tainting: feeding a secret into a builder taints the builder.
void builder_leak(Channel& channel) {
  PPDS_SECRET int s = 21;
  ByteWriter w;
  w.write_i32(s);
  channel.send(w.take());  // MUST-FLAG(secret-sink)
}

// File-wide suppression coverage: allow-file silences a whole rule here.
// taint: allow-file(secret-divmod)
int sanctioned_divmod() {
  PPDS_SECRET int s = 31;
  return s / 3;  // MUST-NOT-FLAG
}
