// Negative fixture for tools/lint/taint_analyzer.py — proves the analyzer
// scans HEADERS: an annotated member root used by an inline method must
// fire even though no .cpp is involved. NEVER compiled; purely textual.

#pragma once

struct KeystreamLike {
  PPDS_SECRET unsigned long long state_;

  // [secret-branch] ternary on the secret chaining state, header-inline.
  int parity() const { return (state_ & 1ull) ? 1 : 0; }  // MUST-FLAG(secret-branch)

  // [secret-index] header-inline secret-addressed lookup.
  unsigned char pick(const unsigned char* table) const {
    return table[state_ & 0xffull];  // MUST-FLAG(secret-index)
  }

  // Public metadata of the secret state stays silent.
  unsigned long long rounds() const {
    return counter_;  // MUST-NOT-FLAG
  }

  unsigned long long counter_ = 0;
};
