// Negative fixture for tools/lint/taint_analyzer.py — timing rules.
// NEVER compiled or linked: the analyzer is textual and PPDS_SECRET /
// PPDS_DECLASSIFY need no definitions here. `--self-test` asserts that
// every MUST-FLAG(<rule>) line fires exactly that rule and every
// MUST-NOT-FLAG line stays silent.

// [secret-branch] direct branch on an annotated local.
int branch_on_secret() {
  PPDS_SECRET int s = 7;
  if (s > 3) {  // MUST-FLAG(secret-branch)
    return 1;
  }
  return 0;
}

// [secret-branch] taint survives assignment and arithmetic before the test.
int branch_after_hops(int pub) {
  PPDS_SECRET int s = 9;
  int mixed = s + pub;
  int hop = mixed * 2;
  switch (hop & 3) {  // MUST-FLAG(secret-branch)
    default:
      return 0;
  }
}

// [secret-branch] ternary condition on a Secret<T> wrapper value.
int ternary_on_secret() {
  Secret<int> amp(5);
  int v = amp.value();
  return v > 0 ? 1 : -1;  // MUST-FLAG(secret-branch)
}

// [secret-branch] PPDS_DECLASSIFY blesses VALUE flows only: branching
// directly inside the macro is still a timing leak and must fire.
int branch_inside_declassify() {
  PPDS_SECRET int s = -2;
  if (PPDS_DECLASSIFY(s < 0, "not actually masked")) {  // MUST-FLAG(secret-branch)
    return -1;
  }
  return 1;
}

// The sanctioned two-step reveal: declassify to a public bool, branch on
// that. The assignment launders the taint, so the branch is public.
int sanctioned_reveal() {
  PPDS_SECRET int s = -2;
  bool neg = PPDS_DECLASSIFY(s < 0, "sign is blinded by the mask argument");
  if (neg) {  // MUST-NOT-FLAG
    return -1;
  }
  return 1;
}

// [secret-loop-bound] classic Hamming-weight leak: trip count == popcount.
int popcount_leak() {
  PPDS_SECRET unsigned k = 0xdeadbeefu;
  int n = 0;
  while (k != 0u) {  // MUST-FLAG(secret-loop-bound)
    k &= k - 1u;
    ++n;
  }
  return n;
}

// [secret-loop-bound] for-loop bound derived from a secret.
int secret_trip_count() {
  PPDS_SECRET int rounds = 12;
  int acc = 0;
  for (int i = 0; i < rounds; ++i) {  // MUST-FLAG(secret-loop-bound)
    acc += i;
  }
  return acc;
}

// Iterating a secret container with a PUBLIC length is fine: the range-for
// itself must stay silent (the element values are tainted, the count is not).
int public_length_walk() {
  PPDS_SECRET int key_words[4] = {1, 2, 3, 4};
  int acc = 0;
  for (int w : key_words) {  // MUST-NOT-FLAG
    acc ^= w;
  }
  if (acc != 0) {  // MUST-FLAG(secret-branch)
    return 1;
  }
  return 0;
}

// [secret-index] table lookup addressed by key material (cache leak).
int sbox_lookup(const unsigned char* table) {
  PPDS_SECRET unsigned char k = 0x5a;
  return table[k];  // MUST-FLAG(secret-index)
}

// Reading secret data at a PUBLIC index is not an indexed leak.
int public_index_read(int i) {
  PPDS_SECRET int key_words[4] = {1, 2, 3, 4};
  int w = key_words[i];  // MUST-NOT-FLAG
  return w ^ w;
}

// [secret-divmod] hardware division latency depends on operand values.
int secret_dividend() {
  PPDS_SECRET int s = 1234;
  return s / 7;  // MUST-FLAG(secret-divmod)
}

int secret_modulus(int pub) {
  PPDS_SECRET int s = 97;
  return pub % s;  // MUST-FLAG(secret-divmod)
}

// Suppression coverage: would fire, but carries an inline allow.
int suppressed_branch() {
  PPDS_SECRET int s = 1;
  if (s == 1) { return 2; }  // taint: allow(secret-branch) MUST-NOT-FLAG
  return 0;
}
