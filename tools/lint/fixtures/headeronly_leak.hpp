// Seeded NEGATIVE fixture for secret_hygiene.py --self-test: a header-only
// class that owns a secret-named buffer and never wipes it. There is no
// companion .cpp with this stem, so the header itself owns the wipe duty and
// missing-wipe must fire here.
#pragma once

#include <cstdint>
#include <vector>

using Bytes = std::vector<std::uint8_t>;

class HeaderOnlyKeystore {
 public:
  explicit HeaderOnlyKeystore(Bytes key) : session_key_(std::move(key)) {}
  // BUG (seeded): inline destructor frees the buffer without wiping it.
  ~HeaderOnlyKeystore() = default;

  const Bytes& bytes() const { return session_key_; }

 private:
  Bytes session_key_;
};
