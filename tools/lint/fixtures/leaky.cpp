// Negative fixture for tools/lint/secret_hygiene.py. NEVER compiled or
// linked — it exists so `secret_hygiene.py --self-test` can prove that every
// rule still fires and that the suppression syntax still silences findings.
// Each block below seeds exactly the violation named in its comment.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

using Bytes = int;  // stand-in; the linter is textual

// [insecure-rand] libc rand()/srand() in crypto code.
int weak_random() {
  srand(42);
  return rand();
}

// [memcmp-on-secret] early-exit comparison of key material.
bool compare_tags(const unsigned char* a, const unsigned char* b) {
  return std::memcmp(a, b, 32) == 0;
}

// [secret-compare] operator== on secret-named buffers.
bool keys_match(const Bytes& session_key, const Bytes& expected_key) {
  return session_key == expected_key;
}

// [secret-stream] key material reaching a console/log.
void debug_dump(const Bytes& master_seed) {
  std::cout << "seed is " << master_seed << "\n";
  printf("pad=%d\n", master_seed);
}

// [missing-wipe] this file declares an owning secret buffer below and never
// wipes it before scope exit.
void derive() {
  std::uint8_t round_key[32] = {0};
  (void)round_key;
}

// Suppression coverage: these would fire but are allowed; the self-test
// asserts they stay silent (MUST-NOT-FLAG markers).
int sanctioned() {
  // hygiene: allow(insecure-rand) -- fixture: proving suppression works
  return rand();  // MUST-NOT-FLAG
}

bool sanctioned_compare(const Bytes& public_key_fingerprint, const Bytes& other) {
  return public_key_fingerprint == other;  // hygiene: allow(secret-compare) MUST-NOT-FLAG
}
