// Seeded POSITIVE fixture for secret_hygiene.py --self-test: a header whose
// class is implemented out of line. The companion outofline.cpp wipes the
// buffer in the destructor, so missing-wipe must NOT fire on this header —
// the companion-stem exemption is exactly what this pair pins down.
#pragma once

#include <cstdint>
#include <vector>

using Bytes = std::vector<std::uint8_t>;

class OutOfLineKeystore {
 public:
  explicit OutOfLineKeystore(Bytes key);
  ~OutOfLineKeystore();  // wipes in outofline.cpp

 private:
  Bytes session_key_;  // MUST-NOT-FLAG
};
