// Companion TU for outofline.hpp (secret_hygiene.py --self-test): wipes the
// secret member in the out-of-line destructor, discharging the header's
// missing-wipe duty.
#include "outofline.hpp"

#include <utility>

void secure_wipe(Bytes& b);  // provided by the real tree; declaration suffices

OutOfLineKeystore::OutOfLineKeystore(Bytes key) : session_key_(std::move(key)) {}

OutOfLineKeystore::~OutOfLineKeystore() { secure_wipe(session_key_); }
