#pragma once

#include <span>
#include <vector>

#include "ppds/common/fixed_point.hpp"
#include "ppds/common/rng.hpp"
#include "ppds/common/secret_taint.hpp"
#include "ppds/crypto/ot.hpp"
#include "ppds/math/multipoly.hpp"
#include "ppds/net/channel.hpp"

/// \file ompe.hpp
/// Oblivious Multivariate Polynomial Evaluation (Section III-C / IV of the
/// paper, after Tassa et al.).
///
/// Roles:
///  * the SENDER (the paper's Alice / trainer) holds a secret multivariate
///    polynomial P over r variates with total degree p;
///  * the RECEIVER (Bob / client) holds an input vector alpha in R^r and
///    learns P(alpha); the sender learns nothing about alpha, the receiver
///    learns nothing about P beyond the single value.
///
/// Mechanics (one protocol round trip + one k-out-of-n OT):
///  1. Receiver draws r random degree-q cover polynomials g_i, g_i(0) =
///     alpha_i, bundles them as G(v); picks M = m*k nonzero distinct nodes
///     v_1..v_M with a secret subset I of size m = p*q + 1; sets
///     z_sigma = G(v_sigma) on I and random disguise vectors elsewhere;
///     ships all (v_i, z_i).
///  2. Sender draws a masking polynomial h of degree p*q with h(0) = 0,
///     evaluates w_i = h(v_i) + P(z_i) for every pair.
///  3. m-out-of-M OT delivers exactly the w_sigma with sigma in I.
///  4. Receiver Lagrange-interpolates B through (v_sigma, w_sigma) and
///     outputs B(0) = h(0) + P(G(0)) = P(alpha).
///
/// Backends:
///  * kReal  — long-double arithmetic; the paper's formulation over R.
///    Masking is statistical (bounded random coefficients).
///  * kField — exact arithmetic in F_{2^61-1} over fixed-point encodings;
///    masking coefficients are uniform field elements (information-
///    theoretic, matching the original OMPE construction). The decoded
///    result is exact to the fixed-point grid — the backend of choice when
///    only the SIGN of the result matters (classification).

namespace ppds::ompe {

enum class Backend : std::uint8_t { kReal = 0, kField = 1 };

/// Public protocol parameters (shared by both parties out of band).
struct OmpeParams {
  unsigned q = 8;        ///< masking-degree security parameter of the paper
  unsigned k = 3;        ///< cover blow-up; M = (p*q + 1) * k
  Backend backend = Backend::kReal;
  unsigned frac_bits = 20;  ///< fixed-point scale (field backend only)
  double node_lo = 0.3;  ///< |v| lower bound for real-backend nodes
  double node_hi = 1.5;  ///< |v| upper bound for real-backend nodes

  // --- Local performance knobs --------------------------------------------
  // NOT protocol parameters: they never change wire bytes (transcripts are
  // bit-identical for every setting, enforced by tests), so they are
  // excluded from the session digest and the parties need not agree on them.

  /// Worker-task budget for the per-point masked evaluation loops (the
  /// sender's M-point A(v, z) sweep and the receiver's M-point cover /
  /// disguise sweep). 0 = one task per hardware thread; 1 = run inline.
  /// Small workloads stay inline regardless — see docs/PERFORMANCE.md §1.4.
  unsigned eval_threads = 0;

  /// Evaluate generic (run_sender) secrets through the compiled monomial
  /// DAG (math::CompiledMultiPoly) instead of naive per-term power walks.
  /// Off is only useful for baseline benchmarks and equivalence tests.
  bool use_eval_dag = true;

  /// Run the field-backend point sweeps on packed Mersenne-61 lanes
  /// (field::M61x8 — AVX2 when the CPU has it, bit-identical portable
  /// kernels otherwise; see field/m61xn.hpp for the dispatch rules).
  /// Transcripts are unchanged for every setting; off pins the scalar
  /// reference path for A/B tests and benchmarks. Real-backend sweeps and
  /// the naive (use_eval_dag = false) generic evaluator ignore it.
  bool use_simd_field = true;

  /// Number of pairs the receiver keeps (polynomial degree p known).
  std::size_t m(unsigned p) const { return static_cast<std::size_t>(p) * q + 1; }
  /// Total number of disguised pairs.
  std::size_t big_m(unsigned p) const { return m(p) * k; }
};

/// Snapshot of the process-wide OMPE stage counters (mirrors
/// crypto::exp_counters()): wall time and element counts per protocol stage,
/// so perf work can attribute cost without a profiler. Both roles feed the
/// same counters — in-process two-party runs therefore see the union of the
/// sender's and the receiver's work.
struct StageCounters {
  std::uint64_t mask_eval_ns = 0;      ///< sender: parse + h(v) + P(z) sweep
  std::uint64_t mask_eval_points = 0;  ///< disguised pairs evaluated
  std::uint64_t cover_eval_ns = 0;     ///< receiver: covers, nodes, disguises
  std::uint64_t cover_eval_points = 0; ///< disguised pairs produced
  std::uint64_t ot_ns = 0;             ///< both roles: m-out-of-M OT wall time
  std::uint64_t ot_elements = 0;       ///< sender: values offered; receiver: kept
  std::uint64_t interp_ns = 0;         ///< receiver: Lagrange interpolation
  std::uint64_t interp_points = 0;     ///< interpolation support points
};

/// Reads the counters (monotonic since process start or the last reset).
/// Thread-safe.
StageCounters stage_counters();

/// Resets all stage counters to zero (benchmark bracketing). Thread-safe.
void reset_stage_counters();

/// Runs the sender role for one evaluation. \p secret must have total
/// degree >= 1; its arity and degree are public. When amplification is
/// wanted (the paper's ra / rb), the caller bakes it into \p secret first.
///
/// \p declared_degree lets the caller announce a degree LARGER than the
/// secret's actual total degree (0 = use the actual degree). The nonlinear
/// classification scheme declares the kernel degree p although the expanded
/// polynomial is linear in the monomial variates tau, so the protocol cost
/// m = p*q + 1 matches Section IV-B of the paper.
void run_sender(net::Endpoint& channel, PPDS_SECRET const math::MultiPoly& secret,
                const OmpeParams& params, crypto::OtSender& ot, Rng& rng,
                unsigned declared_degree = 0);

/// Fast path for secrets that are LINEAR in the (possibly transformed)
/// input variates: d(z) = w . z + b. The nonlinear classification scheme
/// expands the kernel into up to hundreds of thousands of monomial
/// variates; representing that expansion as a MultiPoly would cost
/// O(arity^2) memory, while this path evaluates each disguised pair in
/// O(arity). Protocol messages are identical to the generic path.
void run_sender_linear(net::Endpoint& channel,
                       PPDS_SECRET std::span<const double> w,
                       PPDS_SECRET double b, const OmpeParams& params,
                       crypto::OtSender& ot, Rng& rng,
                       unsigned declared_degree = 0);

/// Runs the receiver role; returns P(alpha).
/// \p degree and \p arity describe the sender's polynomial (public).
double run_receiver(net::Endpoint& channel,
                    PPDS_SECRET std::span<const double> alpha,
                    unsigned degree, std::size_t arity,
                    const OmpeParams& params, crypto::OtReceiver& ot,
                    Rng& rng);

}  // namespace ppds::ompe
