#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "ppds/crypto/silent_ot.hpp"

/// \file reservoir.hpp
/// Background pad-refill service for the silent-OT engines. A PadReservoir
/// owns one or more worker threads (the same mutex + condition-variable
/// idiom as ppds::ThreadPool) that watch a set of attached RefillTarget
/// engines and run their PRG/hash expansion work off the protocol thread
/// whenever a pool sinks under its low-water mark. Engines kick() the
/// reservoir when they stage new work or drain a pool; workers sleep
/// otherwise.
///
/// Lock ordering is reservoir mutex -> target mutex, everywhere: workers
/// scan needs_refill() while holding the reservoir lock (each check briefly
/// takes the target lock), and targets never call into the reservoir while
/// holding their own lock (they copy the pointer out first). refill_step()
/// itself runs with NO reservoir lock held so staging and aborts proceed
/// concurrently.
///
/// Shutdown contract: detach() blocks until no worker is inside the
/// departing target, so an engine may be destroyed the moment detach()
/// returns; stop() (and the destructor) joins all workers. The daemon holds
/// one shared reservoir across connections and joins it on SIGTERM drain
/// after the session workers (server/daemon.cpp).

namespace ppds::crypto {

class PadReservoir {
 public:
  /// Spawns \p workers refill threads immediately (at least one).
  explicit PadReservoir(std::size_t workers = 1);

  /// stop()s if still running.
  ~PadReservoir();

  PadReservoir(const PadReservoir&) = delete;
  PadReservoir& operator=(const PadReservoir&) = delete;

  /// Adds \p target to the watch set and wakes the workers. Callers are
  /// responsible for detaching before \p target dies; the silent-OT engines
  /// do this from their destructors only when attached through their own
  /// attach_reservoir(), so prefer that entry point over calling this
  /// directly.
  void attach(RefillTarget& target);

  /// Removes \p target and BLOCKS until no worker is inside it; the target
  /// may be destroyed as soon as this returns. Safe to call for a target
  /// that was never attached.
  void detach(RefillTarget& target) noexcept;

  /// Wakes the workers to re-scan (called by engines on staging/drain).
  void kick();

  /// Signals shutdown and joins all workers. Idempotent.
  void stop() noexcept;

  std::size_t workers() const { return workers_.size(); }
  std::size_t attached() const;

  /// Total refill_step() invocations across all workers (bench/test stat).
  std::uint64_t steps() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;       ///< workers sleep here between kicks
  std::condition_variable idle_cv_;  ///< detach() waits for workers to leave
  std::vector<RefillTarget*> targets_;
  std::vector<RefillTarget*> active_;  ///< targets currently inside a step
  bool stopping_ = false;
  std::uint64_t steps_ = 0;
  std::size_t cursor_ = 0;  ///< round-robin fairness across targets
  std::vector<std::thread> workers_;
};

}  // namespace ppds::crypto
