#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ppds/common/secret_taint.hpp"
#include "ppds/crypto/sha256.hpp"

/// \file pprf.hpp
/// GGM puncturable PRF: a binary tree of 32-byte seeds whose root stretches
/// into a domain of 2^depth leaves through the counter-mode PRG
/// (crypto/prg.hpp). Each internal seed derives its two children as the
/// first 64 keystream bytes of Prg(seed); a leaf IS its 32-byte seed.
///
/// Three evaluation modes, all bit-identical on the shared domain:
///
///   leaf(i)            — random access, re-derives the root-to-leaf path
///                        (depth PRG calls, no retained state);
///   expand_range(...)  — frontier walk over [first, last): a depth-first
///                        descent that keeps only the O(depth) co-path of
///                        live seeds instead of O(domain) nodes, emitting
///                        leaves in order. This is how the silent-OT
///                        keystream columns are expanded block by block.
///   expand_all_naive() — full level-by-level expansion holding whole
///                        levels in memory; the test oracle the frontier
///                        walk is checked against at every depth.
///
/// puncture(i) yields the classic punctured key: the co-path seeds of leaf
/// i, which evaluate every leaf EXCEPT i (the receiver-side artifact of
/// punctured-PRF OT constructions; property-tested in tests/crypto).
///
/// Every seed in this file is correlated-randomness key material: roots and
/// co-path seeds are PPDS_SECRET taint roots, and wipe() supports the
/// abort-audit contract (ot_abort_audit().frontier_wipes counts verified
/// frontier wipes — see crypto/silent_ot.cpp).

namespace ppds::crypto {

/// Derives the two children of a GGM node: (left, right) = first 64
/// keystream bytes of Prg(seed).
void ggm_children(const Digest& seed, Digest& left, Digest& right);

class GgmTree {
 public:
  GgmTree() = default;

  /// \p depth in [0, 63]; the domain is 1 << depth leaves.
  GgmTree(const Digest& root, unsigned depth);

  ~GgmTree();
  GgmTree(const GgmTree&) = default;
  GgmTree& operator=(const GgmTree&) = default;

  unsigned depth() const { return depth_; }
  std::uint64_t leaves() const { return std::uint64_t{1} << depth_; }

  /// Random access: derives leaf \p index from the root (depth PRG calls).
  /// Thread-safe for concurrent callers — evaluation is a pure function of
  /// the root seed and mutates no shared state.
  Digest leaf(std::uint64_t index) const;

  /// Frontier walk over leaves [first, last): depth-first descent keeping
  /// O(depth) live seeds, calling \p sink(index, leaf) in increasing index
  /// order. Bit-identical to leaf()/expand_all_naive().
  void expand_range(
      std::uint64_t first, std::uint64_t last,
      const std::function<void(std::uint64_t, const Digest&)>& sink) const;

  /// Level-by-level full expansion (O(domain) memory) — the reference the
  /// frontier walk is tested against. Keep depths small.
  std::vector<Digest> expand_all_naive() const;

  /// Zeroes the root seed (the entire frontier of this tree's live state)
  /// and marks the tree dead. leaf()/expand after wipe() throws.
  void wipe() noexcept;

  bool wiped() const { return wiped_; }

  /// Co-path seeds of leaf \p index, root level first (needs the private
  /// root, hence a member; see puncture() below for the packaged key).
  std::vector<Digest> expand_copath(std::uint64_t index) const;

 private:
  PPDS_SECRET Digest root_{};
  unsigned depth_ = 0;
  bool wiped_ = true;  // default-constructed tree holds no key material
};

/// Punctured key for one leaf: the sibling seed at every level of the
/// root-to-leaf path. Evaluates every leaf except `index`; the punctured
/// leaf is information-theoretically absent from the key.
struct PuncturedKey {
  std::uint64_t index = 0;
  unsigned depth = 0;
  /// copath[d] is the sibling seed at level d+1 (root level first); the
  /// subtree it roots covers the leaves that branch off the punctured path
  /// at depth d.
  PPDS_SECRET std::vector<Digest> copath;

  /// Evaluates leaf \p i != index (throws on the punctured point).
  Digest leaf(std::uint64_t i) const;

  /// All 2^depth leaves with the punctured slot zeroed (test helper).
  std::vector<Digest> expand_all() const;

  void wipe() noexcept;
};

/// Derives the punctured key for \p index from the full tree.
PuncturedKey puncture(const GgmTree& tree, std::uint64_t index);

}  // namespace ppds::crypto
