#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "ppds/common/bytes.hpp"
#include "ppds/common/secret_taint.hpp"

/// \file sha256.hpp
/// SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Used as the key-derivation hash of the Naor-Pinkas OT, the PRG core, and
/// the 1-out-of-n OT key combiner. Verified against NIST test vectors in
/// tests/crypto/sha256_test.cpp.

namespace ppds::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() { reset(); }
  Sha256(const Sha256&) = default;
  Sha256& operator=(const Sha256&) = default;

  /// Wipes the chaining state and the buffered message tail — when the hash
  /// keys an OT pad or the PRG, both are key material.
  ~Sha256();

  void reset();
  void update(std::span<const std::uint8_t> data);
  void update(const std::string& s) { update(as_u8_span(s)); }

  /// Finalizes and returns the digest. The object must be reset() before
  /// reuse.
  Digest finish();

 private:
  void compress(PPDS_SECRET const std::uint8_t* block);

  // Chaining state and buffered tail are key material whenever the hash
  // keys an OT pad or the PRG (taint roots for tools/lint/taint_analyzer.py).
  PPDS_SECRET std::array<std::uint32_t, 8> h_{};
  PPDS_SECRET std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(std::span<const std::uint8_t> data);

/// Hash of the concatenation of several byte strings, each length-prefixed
/// (prevents ambiguity/extension games between fields).
Digest sha256_tagged(std::span<const Bytes> parts);

}  // namespace ppds::crypto
