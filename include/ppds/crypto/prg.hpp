#pragma once

#include <cstdint>

#include "ppds/common/bytes.hpp"
#include "ppds/common/secret_taint.hpp"
#include "ppds/crypto/sha256.hpp"

/// \file prg.hpp
/// Hash-based pseudo-random generator (SHA-256 in counter mode).
///
/// Keyed by a 32-byte seed; produces an unbounded keystream. Used to
/// (a) stretch OT pad keys to message length, and (b) derive the random
/// masking/cover polynomial coefficients in deterministic protocol tests.

namespace ppds::crypto {

/// Counter-mode PRG over SHA-256: block_i = SHA256(seed || i).
class Prg {
 public:
  explicit Prg(const Digest& seed) : seed_(seed) {}
  Prg(const Prg&) = default;
  Prg& operator=(const Prg&) = default;

  /// Wipes the seed and the buffered keystream block on destruction.
  ~Prg();

  /// Next \p n keystream bytes.
  Bytes next(std::size_t n);

  /// XORs the keystream into \p data in place (stream cipher use).
  void xor_into(std::span<std::uint8_t> data);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

 private:
  void refill();

  PPDS_SECRET Digest seed_;
  std::uint64_t counter_ = 0;
  PPDS_SECRET Digest block_{};
  std::size_t block_pos_ = sizeof(Digest);
};

/// One-shot pad: PRG(seed) XOR data (used by the OT encryptions).
Bytes xor_pad(PPDS_SECRET const Digest& seed, std::span<const std::uint8_t> data);

}  // namespace ppds::crypto
