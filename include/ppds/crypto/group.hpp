#pragma once

#include <gmpxx.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ppds/common/bytes.hpp"
#include "ppds/common/rng.hpp"
#include "ppds/crypto/sha256.hpp"

/// \file group.hpp
/// Prime-order subgroup of Z_p^* used by the Naor-Pinkas oblivious transfer.
///
/// p is a safe prime (p = 2q + 1) from the standard MODP groups
/// (RFC 2409 / RFC 3526); the generator g = 4 generates the order-q subgroup
/// of quadratic residues. Exponents are sampled in [1, q). Elements are
/// serialized as fixed-width big-endian byte strings so wire sizes are
/// predictable and countable.
///
/// Exponentiation comes in two speeds:
///  * pow(base, e) — one full mpz_powm (arbitrary base);
///  * fixed-base windowed exponentiation via a precomputed FixedBaseTable —
///    the exponent is cut into w-bit windows and the result is a product of
///    ceil(bits/w) table entries, no squarings online. The table for the
///    group generator g is built lazily (thread-safe) on first pow_g; bases
///    reused across many transfers (e.g. the amortized OT's g^r) get their
///    own table via make_table().
///
/// Both paths feed global exponentiation counters (exp_counters()) so
/// benchmarks can report how many full exponentiations a protocol change
/// eliminated.

namespace ppds::crypto {

/// Named standard groups (trade security for benchmark speed explicitly).
enum class GroupId {
  kModp1024,  ///< RFC 2409 Oakley group 2 (benchmark-friendly)
  kModp1536,  ///< RFC 3526 group 5 (default)
  kModp2048,  ///< RFC 3526 group 14
};

/// Snapshot of the process-wide exponentiation counters.
struct ExpCounters {
  std::uint64_t full = 0;        ///< full mpz_powm exponentiations
  std::uint64_t fixed_base = 0;  ///< table-served exponentiations
  std::uint64_t multi_exp_batches = 0;  ///< multi_exp() invocations
  std::uint64_t multi_exp_bases = 0;    ///< bases folded across those batches
};

/// Reads the process-wide counters (monotonic since process start or the
/// last reset). Thread-safe.
ExpCounters exp_counters();

/// Resets both counters to zero (benchmark bracketing). Thread-safe.
void reset_exp_counters();

/// Precomputed window table for one base: entry (i, j) holds
/// base^(j * 2^(w*i)) mod p, so base^e is the product over windows i of
/// entry(i, window_i(e)). Read-only after construction; safe to share
/// across threads.
class FixedBaseTable {
 public:
  /// Window width in bits. 6 trades ~3 MiB per 1536-bit table for a
  /// ~256-multiply evaluation (vs ~1536 squarings + ~300 multiplies for a
  /// full modexp).
  static constexpr unsigned kWindowBits = 6;

  FixedBaseTable(const mpz_class& base, const mpz_class& modulus,
                 std::size_t exponent_bits);

  /// base^e mod p via table lookups. \p e must be in [0, 2^exponent_bits).
  mpz_class pow(const mpz_class& e) const;

  /// Largest exponent bit width the table covers.
  std::size_t exponent_bits() const { return exponent_bits_; }

 private:
  mpz_class modulus_;
  std::size_t exponent_bits_;
  std::size_t blocks_;
  /// blocks_ * 2^w entries, row-major: entries_[i * 2^w + j].
  std::vector<mpz_class> entries_;
};

/// Multiplicative group wrapper. Logically immutable after construction
/// (the lazily built generator table is internally synchronized); cheap to
/// share by const reference between both protocol parties and across
/// concurrent sessions.
class DhGroup {
 public:
  /// \p fixed_base_tables disables the windowed-table acceleration when
  /// false (every pow_g becomes a full mpz_powm) — used by benchmarks to
  /// measure the unaccelerated baseline and by equivalence tests.
  explicit DhGroup(GroupId id = GroupId::kModp1536,
                   bool fixed_base_tables = true);

  DhGroup(const DhGroup&) = delete;
  DhGroup& operator=(const DhGroup&) = delete;

  /// Modulus byte width (all serialized elements use exactly this width).
  std::size_t element_bytes() const { return element_bytes_; }

  /// g^e mod p. Served from the lazily built generator table when
  /// acceleration is on and e is in range; falls back to pow() otherwise.
  mpz_class pow_g(const mpz_class& e) const;

  /// b^e mod p (always a full exponentiation).
  mpz_class pow(const mpz_class& base, const mpz_class& e) const;

  /// Builds a window table for an arbitrary \p base reused across many
  /// exponentiations (e.g. the amortized OT's per-batch g^r). The build
  /// costs a handful of full exponentiations' worth of multiplies; it pays
  /// off after ~10 uses. Returns nullptr when acceleration is disabled.
  std::unique_ptr<FixedBaseTable> make_table(const mpz_class& base) const;

  /// base^e through \p table when non-null and in range, else pow().
  mpz_class pow_with(const FixedBaseTable* table, const mpz_class& base,
                     const mpz_class& e) const;

  /// a*b mod p.
  mpz_class mul(const mpz_class& a, const mpz_class& b) const;

  /// a^{-1} mod p.
  mpz_class invert(const mpz_class& a) const;

  /// Joint multi-exponentiation: prod_i bases[i]^exps[i] mod p, all
  /// exponents >= 0. One shared squaring chain serves every base (Straus
  /// interleaving with 4-bit per-base windows); batches larger than
  /// kPippengerThreshold switch to Pippenger's bucket method, whose window
  /// precompute is shared across ALL bases instead of per base. Bases equal
  /// to g are factored out and served from the generator FixedBaseTable
  /// (zero squarings), then multiplied into the joint result. Counted in
  /// exp_counters().multi_exp_batches / multi_exp_bases rather than .full —
  /// a k-base batch replaces k full exponentiations with one chain.
  mpz_class multi_exp(std::span<const mpz_class> bases,
                      std::span<const mpz_class> exps) const;

  /// Batch size at which multi_exp switches from Straus to Pippenger.
  static constexpr std::size_t kPippengerThreshold = 16;

  /// In-place Montgomery batch inversion: xs[i] <- xs[i]^{-1} mod p using
  /// 3(n-1) multiplications and ONE modular inversion. Throws CryptoError if
  /// any element is non-invertible (and leaves xs unspecified in that case).
  void batch_invert(std::span<mpz_class> xs) const;

  /// Uniform exponent in [1, q).
  mpz_class random_exponent(Rng& rng) const;

  /// Uniform group element g^r for secret r (used as the sender's "C").
  mpz_class random_element(Rng& rng) const;

  /// Fixed-width big-endian serialization.
  Bytes serialize(const mpz_class& x) const;

  /// Parses and validates: must be in [1, p). Throws CryptoError otherwise.
  mpz_class deserialize(std::span<const std::uint8_t> data) const;

  /// KDF: hashes a group element together with a domain-separation tag into
  /// a 32-byte key.
  Digest hash_to_key(const mpz_class& x, std::uint64_t tag) const;

  const mpz_class& p() const { return p_; }
  const mpz_class& q() const { return q_; }
  const mpz_class& g() const { return g_; }

 private:
  const FixedBaseTable* generator_table() const;

  mpz_class p_;  ///< safe prime
  mpz_class q_;  ///< (p-1)/2, prime order of the QR subgroup
  mpz_class g_;  ///< subgroup generator
  std::size_t element_bytes_ = 0;
  bool fixed_base_tables_ = true;
  /// Lazily built table for g, synchronized so the first pow_g of
  /// concurrent sessions races cleanly (tsan-verified).
  mutable std::once_flag g_table_once_;
  mutable std::unique_ptr<FixedBaseTable> g_table_;
};

/// Process-wide shared group per GroupId, with fixed-base acceleration on.
/// Sharing one instance keeps the lazily built generator table warm across
/// sessions instead of rebuilding it per OtBundle.
const DhGroup& shared_group(GroupId id);

}  // namespace ppds::crypto
