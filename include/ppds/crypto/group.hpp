#pragma once

#include <gmpxx.h>

#include <memory>
#include <string>

#include "ppds/common/bytes.hpp"
#include "ppds/common/rng.hpp"
#include "ppds/crypto/sha256.hpp"

/// \file group.hpp
/// Prime-order subgroup of Z_p^* used by the Naor-Pinkas oblivious transfer.
///
/// p is a safe prime (p = 2q + 1) from the standard MODP groups
/// (RFC 2409 / RFC 3526); the generator g = 4 generates the order-q subgroup
/// of quadratic residues. Exponents are sampled in [1, q). Elements are
/// serialized as fixed-width big-endian byte strings so wire sizes are
/// predictable and countable.

namespace ppds::crypto {

/// Named standard groups (trade security for benchmark speed explicitly).
enum class GroupId {
  kModp1024,  ///< RFC 2409 Oakley group 2 (benchmark-friendly)
  kModp1536,  ///< RFC 3526 group 5 (default)
  kModp2048,  ///< RFC 3526 group 14
};

/// Multiplicative group wrapper. Immutable after construction; cheap to
/// share by const reference between both protocol parties.
class DhGroup {
 public:
  explicit DhGroup(GroupId id = GroupId::kModp1536);

  /// Modulus byte width (all serialized elements use exactly this width).
  std::size_t element_bytes() const { return element_bytes_; }

  /// g^e mod p.
  mpz_class pow_g(const mpz_class& e) const;

  /// b^e mod p.
  mpz_class pow(const mpz_class& base, const mpz_class& e) const;

  /// a*b mod p.
  mpz_class mul(const mpz_class& a, const mpz_class& b) const;

  /// a^{-1} mod p.
  mpz_class invert(const mpz_class& a) const;

  /// Uniform exponent in [1, q).
  mpz_class random_exponent(Rng& rng) const;

  /// Uniform group element g^r for secret r (used as the sender's "C").
  mpz_class random_element(Rng& rng) const;

  /// Fixed-width big-endian serialization.
  Bytes serialize(const mpz_class& x) const;

  /// Parses and validates: must be in [1, p). Throws CryptoError otherwise.
  mpz_class deserialize(std::span<const std::uint8_t> data) const;

  /// KDF: hashes a group element together with a domain-separation tag into
  /// a 32-byte key.
  Digest hash_to_key(const mpz_class& x, std::uint64_t tag) const;

  const mpz_class& p() const { return p_; }
  const mpz_class& q() const { return q_; }
  const mpz_class& g() const { return g_; }

 private:
  mpz_class p_;  ///< safe prime
  mpz_class q_;  ///< (p-1)/2, prime order of the QR subgroup
  mpz_class g_;  ///< subgroup generator
  std::size_t element_bytes_ = 0;
};

}  // namespace ppds::crypto
