#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "ppds/common/bytes.hpp"
#include "ppds/common/rng.hpp"
#include "ppds/common/secret_taint.hpp"
#include "ppds/crypto/group.hpp"
#include "ppds/net/channel.hpp"

/// \file ot.hpp
/// The oblivious-transfer stack of Section III-B, bottom-up:
///
///   1-out-of-2  — Naor-Pinkas over a DH group (semi-honest).
///   1-out-of-n  — bit-decomposition key construction: the sender draws
///                 2*ceil(log2 n) pad keys, encrypts message i under the
///                 hash of the keys selected by i's bits, and the parties
///                 run log2(n) parallel 1-out-of-2 OTs on the keys.
///   k-out-of-n  — k parallel 1-out-of-n instances (sufficient for the
///                 honest-but-curious model the paper assumes).
///
/// All protocols speak over a net::Endpoint so every run has an exact,
/// countable wire footprint. Two engines implement the same interface:
///
///   NaorPinkas* — the real cryptographic instantiation (GMP modexp).
///   Loopback*   — a trusted-simulation engine that transfers the selected
///                 messages directly. It provides NO privacy and exists so
///                 large benches can isolate the algebraic OMPE cost from
///                 public-key OT cost (the paper does not specify its OT
///                 implementation; we report both regimes).

namespace ppds::crypto {

/// Sender half of a k-out-of-n OT engine.
class OtSender {
 public:
  virtual ~OtSender() = default;

  /// Transfers k of the n = messages.size() byte strings; which k is the
  /// receiver's secret. All messages must have equal length.
  virtual void send(net::Endpoint& channel,
                    std::span<const Bytes> messages, std::size_t k) = 0;
};

/// Receiver half of a k-out-of-n OT engine.
class OtReceiver {
 public:
  virtual ~OtReceiver() = default;

  /// Retrieves messages at the (strictly increasing) \p indices out of n.
  virtual std::vector<Bytes> receive(net::Endpoint& channel,
                                     std::span<const std::size_t> indices,
                                     std::size_t n,
                                     std::size_t message_len) = 0;
};

/// --- Naor-Pinkas engine ----------------------------------------------------

/// Cryptographic k-out-of-n OT sender. Shares a DhGroup with the receiver
/// (public parameters).
class NaorPinkasSender : public OtSender {
 public:
  NaorPinkasSender(const DhGroup& group, Rng& rng)
      : group_(group), rng_(rng) {}

  void send(net::Endpoint& channel, std::span<const Bytes> messages,
            std::size_t k) override;

  /// Single 1-out-of-2 OT (exposed for tests and OT precomputation).
  void send_1of2(net::Endpoint& channel, const Bytes& m0, const Bytes& m1);

  const DhGroup& group() const { return group_; }

 private:
  void send_1ofn(net::Endpoint& channel, std::span<const Bytes> messages);

  const DhGroup& group_;
  Rng& rng_;
};

/// Cryptographic k-out-of-n OT receiver.
class NaorPinkasReceiver : public OtReceiver {
 public:
  NaorPinkasReceiver(const DhGroup& group, Rng& rng)
      : group_(group), rng_(rng) {}

  std::vector<Bytes> receive(net::Endpoint& channel,
                             std::span<const std::size_t> indices,
                             std::size_t n, std::size_t message_len) override;

  Bytes receive_1of2(net::Endpoint& channel, PPDS_SECRET bool choice,
                     std::size_t message_len);

  const DhGroup& group() const { return group_; }

 private:
  Bytes receive_1ofn(net::Endpoint& channel, std::size_t index, std::size_t n,
                     std::size_t message_len);

  const DhGroup& group_;
  Rng& rng_;
};

/// --- Loopback (trusted simulation) engine ----------------------------------

/// Benchmark-only sender: ships all n messages; the receiver-side object
/// picks locally. Wire cost equals n * len (an upper bound on any real OT),
/// privacy is NOT provided. Never use outside performance studies.
class LoopbackSender : public OtSender {
 public:
  void send(net::Endpoint& channel, std::span<const Bytes> messages,
            std::size_t k) override;
};

class LoopbackReceiver : public OtReceiver {
 public:
  std::vector<Bytes> receive(net::Endpoint& channel,
                             std::span<const std::size_t> indices,
                             std::size_t n, std::size_t message_len) override;
};

/// --- OT precomputation (Beaver) ---------------------------------------------
///
/// Runs the expensive public-key OTs offline on random pads with random
/// choice bits; the online phase per 1-out-of-2 OT is two XORs and one bit
/// of correction. This implements the paper's remark that the cost "can be
/// further reduced by generating random polynomials before the scheme" in
/// its OT analogue, and feeds the ablation bench.
///
/// The offline phase is BATCHED and AMORTIZED (Naor-Pinkas SODA'01 style):
/// the sender reuses one (C_1..C_{n-1}, r) tuple across all N slots of a
/// batch, ships `C_1 || ... || C_{n-1} || g^r` once, the receiver answers
/// with all N blinded public keys in one bundle, and both sides derive the
/// random pads from hashed DH shared secrets with a per-slot domain-
/// separation tag — one round trip and one full exponentiation per slot
/// instead of 3 messages and 6 exponentiations. Fixed-base tables
/// (group.hpp) serve every g^x, the sender's inverse shares run through one
/// Montgomery batch inversion, and the receiver builds a per-batch table
/// for g^r.
///
/// Slots are 1-out-of-ARITY: a direct 1-of-n slot holds n pads of which the
/// receiver knows exactly one, so one n-message transfer consumes ONE slot
/// (one offline exponentiation) instead of the ceil(log2 n) arity-2 slots
/// the bit-decomposition construction needs. Arity 2 is the legacy Beaver
/// 1-out-of-2 slot.

/// Offline artifact held by the sender: one random pad per possible choice
/// index (Beaver correlated randomness — taint roots for the analyzer).
/// The slot's arity is pads.size().
struct PrecomputedSendSlot {
  PPDS_SECRET std::vector<Bytes> pads;
};

/// Offline artifact held by the receiver: its random choice in [0, arity)
/// and the matching pad. The arity itself is public protocol shape.
struct PrecomputedRecvSlot {
  PPDS_SECRET std::uint32_t choice = 0;
  PPDS_SECRET Bytes pad;
  std::uint32_t arity = 2;
};

/// Largest arity served by direct 1-of-n precomputed slots (the online
/// correction shift must fit one byte). Larger transfers fall back to bit
/// decomposition over arity-2 slots.
inline constexpr std::size_t kMaxDirectArity = 256;

/// Number of 1-out-of-2 key transfers a 1-out-of-n OT needs: ceil(log2 n)
/// (0 when n == 1, where the single message is sent directly).
std::size_t index_bits(std::size_t n);

// Silent-OT machinery (crypto/silent_ot.hpp, crypto/reservoir.hpp) — kept
// behind forward declarations so the base OT header stays cycle-free.
class SilentPadSender;
class SilentPadReceiver;
class PadReservoir;

/// k-out-of-n OT engine whose public-key work has been moved OFFLINE: the
/// constructor consumes a batch of precomputed random-pad 1-out-of-2 OTs
/// (Beaver correction), and every online k-out-of-n transfer costs only
/// hashing and XOR. Slots are consumed monotonically; running out throws
/// ProtocolError (size the pool with slots_for()).
class PrecomputedOtSender : public OtSender {
 public:
  /// Runs the offline phase NOW over \p channel (the receiver must run the
  /// matching PrecomputedOtReceiver constructor concurrently).
  PrecomputedOtSender(net::Endpoint& channel, NaorPinkasSender& base,
                      std::size_t slots, Rng& rng);

  /// Wipes the unconsumed precomputed pads (offline key material).
  ~PrecomputedOtSender() override;

  void send(net::Endpoint& channel, std::span<const Bytes> messages,
            std::size_t k) override;

  /// Slots one k-out-of-n transfer will consume.
  static std::size_t slots_for(std::size_t n, std::size_t k) {
    return k * index_bits(n);
  }

  std::size_t remaining() const { return slots_.size() - next_; }

 private:
  void send_1ofn(net::Endpoint& channel, std::span<const Bytes> messages);

  Rng& rng_;
  PPDS_SECRET std::vector<PrecomputedSendSlot> slots_;
  std::size_t next_ = 0;
};

class PrecomputedOtReceiver : public OtReceiver {
 public:
  PrecomputedOtReceiver(net::Endpoint& channel, NaorPinkasReceiver& base,
                        std::size_t slots, Rng& rng);

  /// Wipes the unconsumed precomputed pads (offline key material).
  ~PrecomputedOtReceiver() override;

  std::vector<Bytes> receive(net::Endpoint& channel,
                             std::span<const std::size_t> indices,
                             std::size_t n, std::size_t message_len) override;

  std::size_t remaining() const { return slots_.size() - next_; }

 private:
  Bytes receive_1ofn(net::Endpoint& channel, std::size_t index, std::size_t n,
                     std::size_t message_len);

  PPDS_SECRET std::vector<PrecomputedRecvSlot> slots_;
  std::size_t next_ = 0;
};

/// Runs \p count offline 1-out-of-\p arity OTs of \p pad_len-byte random
/// pads in ONE channel round trip (amortized base phase, pads derived from
/// hashed DH secrets; pad_len <= 32, 2 <= arity <= kMaxDirectArity).
/// Returns the sender-side slots; receiver-side slots come out of the
/// matching call on the other thread.
std::vector<PrecomputedSendSlot> precompute_ot_sender(
    net::Endpoint& channel, NaorPinkasSender& sender, std::size_t count,
    std::size_t pad_len, Rng& rng, std::size_t arity = 2);

std::vector<PrecomputedRecvSlot> precompute_ot_receiver(
    net::Endpoint& channel, NaorPinkasReceiver& receiver, std::size_t count,
    std::size_t pad_len, Rng& rng, std::size_t arity = 2);

/// Process-wide abort-and-wipe audit. Every BatchedOt{Sender,Receiver}::
/// abort() increments `aborts` and — when the post-wipe pool_wiped() scan
/// comes back clean — `wiped`. A supervisor (the daemon tests, an operator
/// reading ppdsd's shutdown stats) asserts wiped == aborts to PROVE that
/// every mid-protocol failure in the process zeroed its pad pools, without
/// reaching into engines owned by other threads' dead sessions.
///
/// Engines running the silent precompute additionally report their GGM
/// state: `frontier_wipes` counts aborts whose post-wipe frontier scan
/// (every tree root seed zeroed, the column-choice mask zeroed) came back
/// clean, and `reservoir_wipes` counts aborts whose staged correction
/// bytes, pre-expanded row material and unconsumed pads all scanned zero —
/// with the background refill thread racing the abort. Disconnect tests
/// assert both equal the number of silent-engine aborts.
struct OtAbortAudit {
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> wiped{0};
  std::atomic<std::uint64_t> frontier_wipes{0};
  std::atomic<std::uint64_t> reservoir_wipes{0};
};

OtAbortAudit& ot_abort_audit();

/// --- Batched session facade --------------------------------------------------
///
/// OtSender/OtReceiver implementation that owns the Naor-Pinkas base
/// machinery and auto-refilled PER-ARITY pools of precomputed slots:
/// reserve() tops a pool up for a whole classification session in one round
/// trip, and send()/receive() refill symmetrically (both sides derive the
/// same top-up size from the transfer shape) if a session outruns its
/// reservation. An n-message transfer with n <= kMaxDirectArity consumes
/// one direct arity-n slot; larger transfers fall back to bit decomposition
/// over the arity-2 pool.

class BatchedOtSender : public OtSender {
 public:
  BatchedOtSender(const DhGroup& group, Rng& rng,
                  std::size_t refill_batch = 128);
  ~BatchedOtSender() override;

  /// Ensures at least \p slots unconsumed arity-2 slots, topping up in one
  /// round trip (the receiver must mirror with its own reserve()).
  void reserve(net::Endpoint& channel, std::size_t slots);

  /// Ensures at least \p count unconsumed arity-\p arity slots.
  void reserve(net::Endpoint& channel, std::size_t arity, std::size_t count);

  void send(net::Endpoint& channel, std::span<const Bytes> messages,
            std::size_t k) override;

  /// Poisons the engine after a failed round trip: wipes every precomputed
  /// pad IN PLACE and refuses all further use (ProtocolError). Correlated
  /// randomness must never be resumed once the two sides may disagree on
  /// how much of it was consumed — a retried query runs on a FRESH engine.
  void abort() noexcept;

  bool aborted() const { return aborted_; }

  /// Abort-audit hook: true when every pad byte in every pool is zero (the
  /// post-abort hygiene check of the chaos tests reads this instead of
  /// poking freed memory).
  bool pool_wiped() const;

  /// Unconsumed slots summed across every arity pool. Alias of
  /// available_slots() — see there for the coherence contract.
  std::size_t remaining() const;

  /// Unconsumed slots of one arity.
  std::size_t remaining(std::size_t arity) const;

  /// Coherent unconsumed-slot accessors: one snapshot under the engine
  /// lock, never a lock-free sum racing a background refill. In silent
  /// mode these report the staged/consumed LEDGER (the protocol-
  /// deterministic quantity), not the locally-timed expansion level.
  std::size_t available_slots() const;
  std::size_t available_slots(std::size_t arity) const;

  /// Switches the offline phase to the silent PPRF engine: one base-OT
  /// handshake on first reserve(), then corrections-only staging. Call
  /// before any reserve()/transfer; \p low_water is the per-arity pool mark
  /// the background reservoir refills against.
  void enable_silent(std::size_t low_water);
  bool silent_enabled() const { return silent_ != nullptr; }
  SilentPadSender* silent_engine() { return silent_.get(); }
  const SilentPadSender* silent_engine() const { return silent_.get(); }

  /// Hooks the silent engine to a background reservoir (no-op without
  /// enable_silent()). detach_reservoir() blocks until the reservoir's
  /// workers have left the engine; the destructor detaches automatically.
  void attach_reservoir(PadReservoir& reservoir);
  void detach_reservoir() noexcept;

 private:
  struct Pool {
    std::size_t arity = 2;
    std::vector<PrecomputedSendSlot> slots;
    std::size_t next = 0;
  };

  Pool& pool_for(std::size_t arity);

  NaorPinkasSender base_;
  Rng& rng_;
  std::size_t refill_batch_;
  std::size_t low_water_ = 0;
  // Guards pools_ so available_slots() observers on other threads see a
  // coherent snapshot; the protocol thread is the only mutator.
  mutable std::mutex pools_mu_;
  // Pool bookkeeping (arity, counts, cursor) is public protocol metadata;
  // the secrets live in the slots' annotated fields.
  std::vector<Pool> pools_;
  std::unique_ptr<SilentPadSender> silent_;
  bool aborted_ = false;
};

class BatchedOtReceiver : public OtReceiver {
 public:
  BatchedOtReceiver(const DhGroup& group, Rng& rng,
                    std::size_t refill_batch = 128);
  ~BatchedOtReceiver() override;

  void reserve(net::Endpoint& channel, std::size_t slots);
  void reserve(net::Endpoint& channel, std::size_t arity, std::size_t count);

  std::vector<Bytes> receive(net::Endpoint& channel,
                             std::span<const std::size_t> indices,
                             std::size_t n, std::size_t message_len) override;

  /// See BatchedOtSender::abort().
  void abort() noexcept;

  bool aborted() const { return aborted_; }

  /// See BatchedOtSender::pool_wiped().
  bool pool_wiped() const;

  std::size_t remaining() const;
  std::size_t remaining(std::size_t arity) const;

  /// See BatchedOtSender::available_slots().
  std::size_t available_slots() const;
  std::size_t available_slots(std::size_t arity) const;

  /// See BatchedOtSender::enable_silent().
  void enable_silent(std::size_t low_water);
  bool silent_enabled() const { return silent_ != nullptr; }
  SilentPadReceiver* silent_engine() { return silent_.get(); }
  const SilentPadReceiver* silent_engine() const { return silent_.get(); }

  void attach_reservoir(PadReservoir& reservoir);
  void detach_reservoir() noexcept;

 private:
  struct Pool {
    std::size_t arity = 2;
    std::vector<PrecomputedRecvSlot> slots;
    std::size_t next = 0;
  };

  Pool& pool_for(std::size_t arity);

  NaorPinkasReceiver base_;
  Rng& rng_;
  std::size_t refill_batch_;
  std::size_t low_water_ = 0;
  mutable std::mutex pools_mu_;
  std::vector<Pool> pools_;
  std::unique_ptr<SilentPadReceiver> silent_;
  bool aborted_ = false;
};

/// Online phase: consumes one precomputed slot per transfer. The receiver
/// announces the public shift s = (index - choice) mod n, the sender
/// answers with all n messages each XORed with the pad the shift aligns to
/// the receiver's one known pad — 1 byte up, n * len bytes down, no
/// public-key operations.
void precomputed_send_1ofn(net::Endpoint& channel,
                           const PrecomputedSendSlot& slot,
                           std::span<const Bytes> messages);

Bytes precomputed_receive_1ofn(net::Endpoint& channel,
                               const PrecomputedRecvSlot& slot,
                               std::size_t index, std::size_t message_len);

/// Arity-2 wrappers (byte-compatible with the legacy Beaver online phase).
void precomputed_send_1of2(net::Endpoint& channel,
                           const PrecomputedSendSlot& slot, const Bytes& m0,
                           const Bytes& m1);

Bytes precomputed_receive_1of2(net::Endpoint& channel,
                               const PrecomputedRecvSlot& slot,
                               PPDS_SECRET bool choice);

}  // namespace ppds::crypto
