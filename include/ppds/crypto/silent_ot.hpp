#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "ppds/common/bytes.hpp"
#include "ppds/common/rng.hpp"
#include "ppds/common/secret_taint.hpp"
#include "ppds/common/watermark.hpp"
#include "ppds/crypto/ot.hpp"
#include "ppds/crypto/pprf.hpp"
#include "ppds/crypto/prg.hpp"

/// \file silent_ot.hpp
/// Silent OT precompute: a KK13-style OT extension that replaces the
/// batched DH offline phase (one full exponentiation and one group element
/// of bandwidth PER SLOT) with PPRF-expanded correlated keystreams.
///
/// One-round-trip seed agreement: the pad-SENDER plays base-OT *receiver*
/// for kSilentColumns 1-of-2 transfers of 32-byte seeds (role flip), so it
/// ends up with one GGM root per column j plus the secret choice bit
/// Delta_j; the pad-RECEIVER plays base-OT sender and keeps BOTH roots
/// (k0_j, k1_j). That single amortized handshake — O(columns) = O(log
/// domain) seeds, since the 2^depth-leaf trees cover kSilentRowsPerLeaf *
/// 2^depth pad slots — is the only public-key work for the engine's entire
/// lifetime.
///
/// Per pad slot (row r, arity n):
///   receiver: draws secret alpha_r in [0, n), sends the 16-byte correction
///             u_r = t0_r XOR t1_r XOR C(alpha_r); its pad is
///             H(r, t0_r).
///   sender:   Q_r = t^{Delta}_r XOR (Delta AND u_r) = t0_r XOR
///             (C(alpha_r) AND Delta); pad v is H(r, Q_r XOR (C(v) AND
///             Delta)), which matches the receiver's at v = alpha_r and
///             costs 2^64 guesses of Delta elsewhere (the RM(1,7) code has
///             distance 64; see docs/PROTOCOL.md).
///
/// The column streams t^b_j are the leaves of per-column GgmTrees expanded
/// frontier-style in blocks, so refills are PRG+hash work a background
/// PadReservoir performs off the protocol thread; the wire carries only the
/// deterministic correction blocks, sized by the shared staged/consumed
/// ledger — never by locally-timed pool levels — so transcripts are
/// independent of reservoir scheduling.

namespace ppds::crypto {

/// Number of base OTs / keystream columns. 128 columns with the RM(1,7)
/// codeword set (256 codewords, minimum distance 64) serve every direct
/// slot arity in [2, kMaxDirectArity].
inline constexpr std::size_t kSilentColumns = 128;
inline constexpr std::size_t kSilentRowBytes = kSilentColumns / 8;

/// One 32-byte GGM leaf carries 256 rows of one column's keystream.
inline constexpr std::size_t kSilentRowsPerLeaf = 256;

/// Tree depth: 2^16 leaves * 256 rows = ~16.7M pad slots per engine
/// lifetime; exhausting the domain fails closed (ProtocolError).
inline constexpr unsigned kSilentTreeDepth = 16;

/// Correction blocks are staged in multiples of this many rows — a
/// PROTOCOL constant (both sides derive identical block sizes from the
/// ledger), deliberately not the local refill_batch tuning knob.
inline constexpr std::size_t kSilentStageQuantum = 128;

/// Ledger lead maintained ahead of consumption so the background expander
/// has runway; also a protocol constant for the same reason.
inline constexpr std::size_t kSilentLeadSlots = 16;

using SilentRow = std::array<std::uint8_t, kSilentRowBytes>;

/// RM(1,7) codeword of \p v: bit j = parity((v & 127) & j) XOR (v >> 7).
/// Branch-free and table-free, so safe to evaluate on a SECRET index (the
/// receiver's choice alpha) without a data-dependent memory access.
SilentRow silent_codeword_ct(std::uint32_t v);

/// Cached codeword table — PUBLIC indices only (the sender's pads loop).
const std::array<SilentRow, kMaxDirectArity>& silent_codewords();

class PadReservoir;

/// One unit of background work the PadReservoir can drive. Implementations
/// are internally synchronized; refill_step() never touches a channel.
class RefillTarget {
 public:
  virtual ~RefillTarget() = default;

  /// Performs one block of expansion work. Returns false when nothing was
  /// pending (the reservoir then sleeps until kicked).
  virtual bool refill_step() = 0;

  /// Cheap (locking) check whether refill_step() has work.
  virtual bool needs_refill() = 0;
};

/// --- Sender half -------------------------------------------------------------

class SilentPadSender : public RefillTarget {
 public:
  SilentPadSender(const DhGroup& group, Rng& rng, std::size_t low_water);
  ~SilentPadSender() override;

  SilentPadSender(const SilentPadSender&) = delete;
  SilentPadSender& operator=(const SilentPadSender&) = delete;

  /// One-round-trip seed agreement (lazy; protocol thread). No-op once run.
  void ensure_ready(net::Endpoint& channel);
  bool ready() const;

  /// Protocol thread: receives correction blocks until the ledger covers
  /// \p count unconsumed arity-\p arity slots. Pure bookkeeping + recv —
  /// the expansion happens in refill_step() (or lazily in take()).
  void stage_to(net::Endpoint& channel, std::size_t arity, std::size_t count);

  /// Protocol thread: pops one finished slot (ledger must cover it). Waits
  /// for the reservoir when attached, expands inline otherwise.
  PrecomputedSendSlot take(std::size_t arity);

  /// Slots staged on the wire ledger and not yet consumed (the
  /// protocol-deterministic quantity reserve() sizes from).
  std::size_t ledger_available(std::size_t arity) const;
  std::size_t ledger_available_total() const;

  /// Slots fully expanded and ready for take() without any work.
  std::size_t expanded_available(std::size_t arity) const;

  // RefillTarget:
  bool refill_step() override;
  bool needs_refill() override;

  void attach_reservoir(PadReservoir* reservoir);
  void detach_reservoir() noexcept;

  /// Wipes frontier seeds, staged corrections and unconsumed pads; poisons
  /// the engine. The caller (BatchedOtSender::abort) feeds the audit.
  void abort() noexcept;
  bool aborted() const;

  /// Post-abort hygiene scans (audit hooks).
  bool frontier_clean() const;  ///< every GGM root seed zeroed
  bool pads_clean() const;      ///< every staged byte + unconsumed pad zeroed

  /// Times the protocol thread had to expand synchronously (cold path);
  /// zero when a warm reservoir keeps up.
  std::uint64_t sync_expansions() const;
  /// Times take() had to sleep for the background expander.
  std::uint64_t take_waits() const;

 private:
  struct Ledger {
    std::size_t arity = 2;
    std::size_t staged = 0;
    std::size_t consumed = 0;
  };
  struct PendingBlock {
    std::size_t arity = 2;
    std::uint64_t first_row = 0;
    std::size_t count = 0;
    PPDS_SECRET Bytes u;  ///< count * kSilentRowBytes correction bytes
  };
  struct Pool {
    std::size_t arity = 2;
    LowWaterQueue<PrecomputedSendSlot> slots;
  };

  Ledger& ledger_for(std::size_t arity);
  Pool& pool_for(std::size_t arity);
  /// Expands \p block into finished slots (pure PRG+hash; call UNLOCKED —
  /// reads only the immutable-after-setup trees).
  std::vector<PrecomputedSendSlot> expand_block(const PendingBlock& block) const;
  /// Pops + expands the oldest pending block; \p lk held on entry and exit.
  void expand_front_locked(std::unique_lock<std::mutex>& lk);
  void kick_reservoir();

  const DhGroup& group_;
  Rng& rng_;
  std::size_t low_water_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool busy_ = false;
  bool ready_ = false;
  bool aborted_ = false;
  PadReservoir* reservoir_ = nullptr;

  /// Per-column keystream trees t^{Delta_j}_j and the secret column choice
  /// mask Delta (the sender's correlation secret).
  std::vector<GgmTree> trees_;
  PPDS_SECRET SilentRow delta_{};

  std::uint64_t next_row_ = 0;
  std::vector<Ledger> ledgers_;
  std::deque<PendingBlock> pending_;
  std::vector<Pool> pools_;

  std::uint64_t sync_expansions_ = 0;
  std::uint64_t take_waits_ = 0;
};

/// --- Receiver half -----------------------------------------------------------

class SilentPadReceiver : public RefillTarget {
 public:
  SilentPadReceiver(const DhGroup& group, Rng& rng, std::size_t low_water);
  ~SilentPadReceiver() override;

  SilentPadReceiver(const SilentPadReceiver&) = delete;
  SilentPadReceiver& operator=(const SilentPadReceiver&) = delete;

  void ensure_ready(net::Endpoint& channel);
  bool ready() const;

  /// Protocol thread: draws choices, builds + SENDS correction blocks until
  /// the ledger covers \p count unconsumed arity-\p arity slots, and pushes
  /// the matching finished recv slots. Consumes pre-expanded row material;
  /// a cold engine expands it inline (counted in sync_expansions()).
  void stage_to(net::Endpoint& channel, std::size_t arity, std::size_t count);

  /// Protocol thread: pops one finished slot. Receiver slots are built at
  /// staging time, so this never blocks.
  PrecomputedRecvSlot take(std::size_t arity);

  std::size_t ledger_available(std::size_t arity) const;
  std::size_t ledger_available_total() const;
  std::size_t expanded_available(std::size_t arity) const;

  // RefillTarget (pre-expands row material ahead of the staging cursor):
  bool refill_step() override;
  bool needs_refill() override;

  void attach_reservoir(PadReservoir* reservoir);
  void detach_reservoir() noexcept;

  void abort() noexcept;
  bool aborted() const;
  bool frontier_clean() const;
  bool pads_clean() const;

  std::uint64_t sync_expansions() const;

 private:
  struct Ledger {
    std::size_t arity = 2;
    std::size_t staged = 0;
    std::size_t consumed = 0;
  };
  /// Arity-independent per-row keystream material (row-major, after the
  /// column->row bit transpose): t0_r and t0_r XOR t1_r.
  struct RowMaterial {
    PPDS_SECRET SilentRow t0{};
    PPDS_SECRET SilentRow ubase{};
  };
  struct Pool {
    std::size_t arity = 2;
    LowWaterQueue<PrecomputedRecvSlot> slots;
  };

  Ledger& ledger_for(std::size_t arity);
  Pool& pool_for(std::size_t arity);
  /// Expands GGM leaf chunk \p chunk (kSilentRowsPerLeaf rows) of both
  /// column trees into row material (pure; call UNLOCKED).
  std::vector<RowMaterial> expand_chunk(std::uint64_t chunk) const;
  /// Appends one chunk of row material; \p lk held on entry and exit.
  void expand_next_chunk_locked(std::unique_lock<std::mutex>& lk);
  std::uint64_t material_through() const;
  void kick_reservoir();

  const DhGroup& group_;
  Rng& rng_;
  std::size_t low_water_;
  std::size_t ahead_rows_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool busy_ = false;
  bool ready_ = false;
  bool aborted_ = false;
  PadReservoir* reservoir_ = nullptr;

  /// Both column keystream trees per column (the receiver ran the base OTs
  /// as sender, so it knows k0_j AND k1_j).
  std::vector<GgmTree> trees0_;
  std::vector<GgmTree> trees1_;
  /// Secret choice stream: alpha draws come from a dedicated PRG forked
  /// from the session rng at setup, so the background thread never touches
  /// the shared Rng.
  std::optional<Prg> choice_prg_;

  std::uint64_t next_row_ = 0;
  std::uint64_t material_from_ = 0;
  std::deque<RowMaterial> material_;
  std::vector<Ledger> ledgers_;
  std::vector<Pool> pools_;

  std::uint64_t sync_expansions_ = 0;
};

}  // namespace ppds::crypto
