#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "ppds/common/bytes.hpp"
#include "ppds/net/channel.hpp"
#include "ppds/net/fault.hpp"

/// \file socket.hpp
/// Real-socket transport (TCP and unix-domain) behind the Endpoint
/// interface.
///
/// SocketEndpoint subclasses net::Endpoint through the protected transport
/// constructor and moves bytes through a connected file descriptor in its
/// deliver()/fetch() overrides. EVERYTHING above the hooks — FrameHeader
/// stamping and five-way validation, recv deadlines, payload/overhead
/// traffic accounting, transcript digests — is the PR 4 machinery reused
/// verbatim, so a protocol session over a socket carries bit-identical
/// payload bytes to the same session over the in-process channel
/// (docs/PROTOCOL.md §8).
///
/// Mapping of the in-process resilience semantics onto the kernel:
///  * recv deadlines -> poll(2) with the remaining budget before every read;
///    a deadline that expires MID-FRAME throws TimeoutError but keeps the
///    partial bytes staged, so the read resumes if the rest arrives before
///    the caller gives up (and session-level retry handles the case where
///    it never does);
///  * BackpressureError -> the kernel send buffer (SO_SNDBUF, configurable
///    via SocketOptions) is the bounded per-direction queue: a write that
///    stays blocked past send_stall_timeout fails with queue-depth
///    diagnostics instead of wedging the worker forever;
///  * close() -> shutdown(2) of both directions (TCP close semantics): the
///    peer's pending recv() wakes with a typed error, never a hang;
///  * a peer that vanishes mid-protocol surfaces as ProtocolError, which
///    fires the session layer's abort-and-wipe path (OtBundle::abort).
///
/// Staging buffers are SECRET-HOLDING: frames carry OT pads and masked
/// evaluations, so the reassembly buffer is secure_wipe()d when a frame is
/// abandoned and on teardown.
///
/// EINTR from poll()/read()/sendmsg() is always retried with the deadline
/// recomputed; writes use MSG_NOSIGNAL so a dead peer yields EPIPE ->
/// ProtocolError instead of killing the process with SIGPIPE.

namespace ppds::net {

/// Address of a listening or connecting socket. Text form (CLI flags,
/// diagnostics): "tcp:<host>:<port>" or "unix:<path>".
struct SocketAddress {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  std::string host = "127.0.0.1";  ///< numeric IPv4 or "localhost"
  std::uint16_t port = 0;          ///< 0 binds an ephemeral port
  std::string path;                ///< unix-domain socket path

  static SocketAddress tcp(std::string host, std::uint16_t port);
  static SocketAddress unix_path(std::string path);

  /// Parses "tcp:host:port" / "unix:/path"; throws InvalidArgument on
  /// anything else.
  static SocketAddress parse(const std::string& spec);

  std::string to_string() const;
};

/// Transport tunables of one socket endpoint.
struct SocketOptions {
  /// Longest a single frame write may sit against a full kernel send buffer
  /// before the send fails with BackpressureError. The kernel buffer is the
  /// bounded send queue; this is the "peer is not draining" trip wire.
  std::chrono::milliseconds send_stall_timeout{30000};
  /// Upper bound on an incoming frame's payload length; a corrupt length
  /// prefix fails fast instead of attempting a giant allocation.
  std::size_t max_frame_bytes = std::size_t{1} << 30;  // 1 GiB
  /// SO_SNDBUF / SO_RCVBUF in bytes; 0 keeps the kernel default. Small
  /// values make the bounded-queue semantics bite early (tests).
  int send_buffer_bytes = 0;
  int recv_buffer_bytes = 0;
  /// Socket-level fault shim: outgoing frames pass through a seeded
  /// FaultEngine BEFORE wire serialization — the chaos sweep over real
  /// file descriptors (tests/integration/chaos_test.cpp).
  FaultSpec fault;
  std::uint64_t fault_seed = 0;
};

/// One side of a duplex framed connection over a real socket. Single-thread
/// use, like every Endpoint; not movable (live file descriptor).
class SocketEndpoint final : public Endpoint {
 public:
  /// Takes ownership of connected \p fd (closed on destruction).
  explicit SocketEndpoint(int fd, SocketOptions options = {});
  ~SocketEndpoint() override;

  SocketEndpoint(SocketEndpoint&&) = delete;

  /// Tears the connection down (both directions, TCP close semantics): the
  /// peer's pending recv() wakes with a typed error; later local sends and
  /// recvs throw ProtocolError. Idempotent.
  void close() override;

  int fd() const { return fd_; }

 protected:
  void deliver(detail::Frame&& frame) override;
  detail::Frame fetch(const Deadline& deadline) override;
  bool transport_live() const override { return fd_ >= 0; }

 private:
  void write_frame(const detail::Frame& frame);
  /// Reads until \p staging holds \p target bytes, honoring \p deadline.
  void fill_staged(Bytes& staging, std::size_t target,
                   const Deadline& deadline,
                   std::chrono::steady_clock::time_point start,
                   const char* what);
  void wipe_staging();

  int fd_ = -1;
  SocketOptions options_;
  FaultEngine fault_;
  bool closed_ = false;
  /// A frame write that stalled partway poisons the byte stream (the peer
  /// will see a truncated frame); fail later sends loudly instead of
  /// interleaving garbage.
  bool wedged_ = false;
  /// Reassembly state: a partially received prelude/payload survives a
  /// TimeoutError so the read can resume (secret-holding; wiped on abandon).
  Bytes staged_prelude_;
  Bytes staged_payload_;
  bool have_header_ = false;
  FrameHeader pending_header_;
  std::uint64_t pending_payload_len_ = 0;
};

/// Serialized socket frame prelude: the 22-byte FrameHeader wire form plus
/// a u64 payload length (the in-process channel needs no length — it moves
/// whole buffers).
inline constexpr std::size_t kSocketPreludeBytes = kFrameHeaderBytes + 8;

/// Accepting socket bound to \p address. accept() honors a Deadline so an
/// acceptor loop can poll a stop flag; close() wakes a blocked accept.
class SocketListener {
 public:
  explicit SocketListener(const SocketAddress& address, int backlog = 128);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Waits for one connection. Throws TimeoutError past the deadline and
  /// ProtocolError once the listener is closed.
  std::unique_ptr<SocketEndpoint> accept(const Deadline& deadline,
                                         SocketOptions options = {});

  void close();

  /// The bound address with the ephemeral port resolved (tcp) — what a
  /// client should connect to.
  const SocketAddress& address() const { return address_; }

 private:
  int fd_ = -1;
  SocketAddress address_;
  bool owns_unix_path_ = false;
};

/// Connects to a listening \p address. Throws TimeoutError if the
/// connection does not establish before \p deadline, ProtocolError when the
/// peer refuses.
std::unique_ptr<SocketEndpoint> socket_connect(
    const SocketAddress& address, const SocketOptions& options = {},
    const Deadline& deadline = {});

/// A connected AF_UNIX socketpair wrapped as two endpoints — the real-
/// kernel analogue of make_channel() (first = party A by convention). Used
/// by the socket chaos sweep and the transport tests.
std::pair<std::unique_ptr<SocketEndpoint>, std::unique_ptr<SocketEndpoint>>
make_socket_pair(const SocketOptions& options_a = {},
                 const SocketOptions& options_b = {});

}  // namespace ppds::net
