#pragma once

#include <cstdint>
#include <string>

#include "ppds/common/bytes.hpp"
#include "ppds/common/error.hpp"

/// \file control.hpp
/// Out-of-band control frames (docs/PROTOCOL.md §8.4).
///
/// A data frame belongs to a session: its stage, sequence number and
/// session id are validated against the receiving endpoint's state, so it
/// can only be understood by the peer that is IN that session. Overload
/// shedding needs the opposite: the daemon must be able to answer a
/// connection it will never serve — before any handshake, possibly while
/// the client is already mid-hello — with a message the client can decode
/// structurally. Control frames travel at Stage::kControl and sit outside
/// the seq/stage/session discipline entirely: Endpoint::recv validates
/// only version and checksum, then surfaces the decoded message as a typed
/// exception instead of desynchronizing the session state machines.
///
/// The only control message today is BUSY: "this daemon is shedding your
/// connection; here is why, and here is how long to back off before trying
/// me again". A busy frame is terminal — the sender closes right after it —
/// so skipping the sequence number cannot open a replay hole: the
/// connection it arrives on is already dead.

namespace ppds::net {

/// Why a daemon shed the connection (carried inside a busy frame).
enum class BusyReason : std::uint8_t {
  kOverCap = 1,      ///< at DaemonOptions::max_connections; slots may free up
  kRateLimited = 2,  ///< accept token bucket empty; retry after the refill
  kDraining = 3,     ///< SIGTERM drain: this daemon is going away, fail over
};

inline const char* busy_reason_name(BusyReason reason) {
  switch (reason) {
    case BusyReason::kOverCap: return "over-cap";
    case BusyReason::kRateLimited: return "rate-limited";
    case BusyReason::kDraining: return "draining";
  }
  return "unknown";
}

/// Decoded busy control message. retry_after_ms is the daemon's backoff
/// suggestion; 0 means "do not retry this daemon, fail over" (the drain
/// case — the daemon will be gone).
struct BusyFrame {
  BusyReason reason = BusyReason::kOverCap;
  std::uint32_t retry_after_ms = 0;
};

/// Leading payload byte distinguishing control message kinds; only busy
/// exists today, but probes/redirects would claim their own tags.
inline constexpr std::uint8_t kBusyTag = 0xB5;

/// Wire form of a busy payload: u8 tag | u8 reason | u32 retry_after_ms.
inline Bytes encode_busy(const BusyFrame& busy) {
  ByteWriter w;
  w.u8(kBusyTag);
  w.u8(static_cast<std::uint8_t>(busy.reason));
  w.u32(busy.retry_after_ms);
  return w.take();
}

/// Decodes a control payload; throws SerializationError on anything that
/// is not a well-formed busy message (a corrupted control frame must fail
/// as loudly as a corrupted data frame).
inline BusyFrame decode_busy(const Bytes& payload) {
  if (payload.size() != 6 || payload[0] != kBusyTag) {
    throw SerializationError(
        "control frame: expected a 6-byte busy payload (tag 0xB5), got " +
        std::to_string(payload.size()) + " bytes");
  }
  BusyFrame busy;
  busy.reason = static_cast<BusyReason>(payload[1]);
  if (busy.reason != BusyReason::kOverCap &&
      busy.reason != BusyReason::kRateLimited &&
      busy.reason != BusyReason::kDraining) {
    throw SerializationError("control frame: unknown busy reason " +
                             std::to_string(payload[1]));
  }
  busy.retry_after_ms = static_cast<std::uint32_t>(payload[2]) |
                        static_cast<std::uint32_t>(payload[3]) << 8 |
                        static_cast<std::uint32_t>(payload[4]) << 16 |
                        static_cast<std::uint32_t>(payload[5]) << 24;
  return busy;
}

/// The peer shed this connection with a structured busy frame. Derives from
/// ProtocolError so every existing abort/retry path treats it as a failed
/// session; overload-aware callers (DaemonSet) catch it FIRST and honor the
/// reason and retry-after hint instead of blind backoff.
class BusyError : public ProtocolError {
 public:
  explicit BusyError(const BusyFrame& busy)
      : ProtocolError(std::string("peer busy (") +
                      busy_reason_name(busy.reason) + "): retry after " +
                      std::to_string(busy.retry_after_ms) + " ms"),
        busy_(busy) {}

  const BusyFrame& busy() const { return busy_; }
  BusyReason reason() const { return busy_.reason; }
  std::uint32_t retry_after_ms() const { return busy_.retry_after_ms; }

 private:
  BusyFrame busy_;
};

}  // namespace ppds::net
