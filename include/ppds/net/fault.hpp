#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <utility>

#include "ppds/common/ct.hpp"
#include "ppds/common/rng.hpp"
#include "ppds/net/channel.hpp"

/// \file fault.hpp
/// Deterministic fault injection for the simulated transport.
///
/// FaultyEndpoint decorates an Endpoint and perturbs its OUTGOING frames
/// (wrap both ends of a channel to fault both directions): drop, duplicate,
/// reorder, bit-flip, truncate, delay, and mid-protocol disconnect, each
/// with an independent probability. Every decision is drawn from a
/// SplitMix64 counter stream over the injector's seed, so a failing chaos
/// run reproduces EXACTLY from (FaultSpec, seed) — print the seed, rerun
/// the seed, and the same frame breaks in the same way.
///
/// Faults act BELOW the framing layer (the frame is already stamped and
/// checksummed), which is where a real network corrupts traffic; the peer's
/// frame validation then surfaces each fault as a typed ProtocolError:
/// bit-flips and truncations as checksum mismatches, drops as sequence gaps
/// or TimeoutError, duplicates as replays, reorders as out-of-order frames,
/// disconnects as closed-channel errors.

namespace ppds::net {

/// Per-direction fault probabilities (each in [0, 1], rolled per frame).
struct FaultSpec {
  double drop = 0.0;        ///< frame never delivered
  double duplicate = 0.0;   ///< frame delivered twice (same seq: a replay)
  double reorder = 0.0;     ///< frame held back behind its successor
  double bit_flip = 0.0;    ///< one payload bit inverted
  double truncate = 0.0;    ///< payload cut at a random length
  double delay = 0.0;       ///< delivery stalled by delay_ms (really slept)
  double disconnect = 0.0;  ///< link torn down mid-protocol
  std::chrono::milliseconds delay_ms{1};

  bool any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 || bit_flip > 0.0 ||
           truncate > 0.0 || delay > 0.0 || disconnect > 0.0;
  }
};

/// The seeded fault-decision machine, factored out of FaultyEndpoint so
/// every transport can perturb its outgoing frames with IDENTICAL,
/// seed-reproducible decision streams: the in-process decorator below wraps
/// it around Endpoint::deliver, and SocketEndpoint (net/socket.hpp) wires
/// it in front of its wire serializer — the "socket-level fault shim" the
/// chaos suite runs over real file descriptors.
///
/// apply() consumes one frame and hands 0..3 frames (drop / duplicate /
/// held-back reorder) to \p emit; \p disconnect is invoked instead when the
/// link must be torn down with the frame. The draw order per frame is fixed
/// (disconnect, drop, delay, bit-flip, truncate, duplicate, reorder), so a
/// given (FaultSpec, seed) perturbs the same frames in the same way on
/// every transport.
class FaultEngine {
 public:
  FaultEngine() = default;
  FaultEngine(const FaultSpec& spec, std::uint64_t seed)
      : spec_(spec), seed_(seed) {}

  ~FaultEngine() {
    // A held-back frame can carry pads/masked evaluations; do not leave
    // them in freed heap pages.
    if (held_.has_value()) secure_wipe(std::span(held_->payload));
  }

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  bool active() const { return spec_.any(); }

  template <typename Emit, typename Disconnect>
  void apply(detail::Frame&& frame, Emit&& emit, Disconnect&& disconnect) {
    if (roll(spec_.disconnect)) {
      disconnect();  // the frame is lost with the link
      return;
    }
    if (roll(spec_.drop)) {
      return;
    }
    if (roll(spec_.delay)) {
      std::this_thread::sleep_for(spec_.delay_ms);
    }
    if (roll(spec_.bit_flip) && !frame.payload.empty()) {
      const std::uint64_t bit = draw() % (frame.payload.size() * 8);
      frame.payload[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    if (roll(spec_.truncate) && !frame.payload.empty()) {
      frame.payload.resize(draw() % frame.payload.size());
    }
    const bool dup = roll(spec_.duplicate);
    if (!held_.has_value() && roll(spec_.reorder)) {
      held_ = std::move(frame);  // delivered behind the NEXT frame
      return;
    }
    emit(detail::Frame(frame));
    if (dup) {
      emit(detail::Frame(frame));
    }
    if (held_.has_value()) {
      emit(std::move(*held_));
      held_.reset();
    }
  }

 private:
  std::uint64_t draw() { return splitmix64(seed_, n_++); }

  bool roll(double probability) {
    if (probability <= 0.0) return false;
    const double u =
        static_cast<double>(draw() >> 11) * 0x1.0p-53;  // [0, 1)
    return u < probability;
  }

  FaultSpec spec_;
  std::uint64_t seed_ = 0;
  std::uint64_t n_ = 0;
  std::optional<detail::Frame> held_;
};

/// Endpoint decorator that injects faults into the frames this party sends.
/// Construct by moving the clean endpoint in; use it exactly like the
/// original (the protocol code never knows).
class FaultyEndpoint final : public Endpoint {
 public:
  FaultyEndpoint(Endpoint&& clean, const FaultSpec& spec, std::uint64_t seed)
      : Endpoint(std::move(clean)), engine_(spec, seed) {}

 protected:
  void deliver(detail::Frame&& frame) override {
    engine_.apply(
        std::move(frame),
        [this](detail::Frame&& out) { Endpoint::deliver(std::move(out)); },
        [this] { close(); });
  }

 private:
  FaultEngine engine_;
};

}  // namespace ppds::net
