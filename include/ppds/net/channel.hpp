#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "ppds/common/bytes.hpp"

/// \file channel.hpp
/// In-process simulated network between two protocol parties.
///
/// Each party of a two-party protocol runs on its own thread and talks
/// through an Endpoint. The pair shares two blocking FIFO queues (one per
/// direction) plus traffic counters, so every experiment can report the
/// exact communication cost (bytes and message rounds) of a protocol run —
/// the distributed-systems measurement the paper's setting implies.
///
/// An optional LatencyModel charges simulated wire time per message; the
/// charge is accounted, not slept, so benches stay fast while still
/// reporting network cost.

namespace ppds::net {

/// Simulated link characteristics. Cost per message =
/// latency_us + bytes * 8 / bandwidth_mbps microseconds.
struct LatencyModel {
  double latency_us = 0.0;
  double bandwidth_mbps = 0.0;  ///< 0 means infinite bandwidth.

  double cost_us(std::size_t bytes) const {
    double us = latency_us;
    if (bandwidth_mbps > 0.0) {
      us += static_cast<double>(bytes) * 8.0 / bandwidth_mbps;
    }
    return us;
  }
};

/// Traffic statistics of one endpoint (what this party SENT).
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double simulated_wire_us = 0.0;
};

namespace detail {

/// One direction of the duplex link: an unbounded blocking queue.
class Pipe {
 public:
  void push(Bytes msg) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_one();
  }

  Bytes pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) {
      throw ProtocolError("channel closed by peer");
    }
    Bytes msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> queue_;
  bool closed_ = false;
};

struct Link {
  Pipe a_to_b;
  Pipe b_to_a;
  LatencyModel latency;
};

}  // namespace detail

/// One side of a duplex channel. Thread-safe against its peer; a single
/// endpoint must only be used from one thread.
class Endpoint {
 public:
  Endpoint(std::shared_ptr<detail::Link> link, bool is_a)
      : link_(std::move(link)), is_a_(is_a) {}

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  Endpoint(Endpoint&&) = default;

  ~Endpoint() {
    if (link_) close();
  }

  /// Sends one framed message to the peer (never blocks: queues are
  /// unbounded, matching a TCP connection with sufficient buffering).
  void send(Bytes msg) {
    stats_.messages += 1;
    stats_.bytes += msg.size();
    stats_.simulated_wire_us += link_->latency.cost_us(msg.size());
    outgoing().push(std::move(msg));
  }

  /// Blocks until the peer's next message arrives. Throws ProtocolError if
  /// the peer closed the channel.
  Bytes recv() { return incoming().pop(); }

  /// Closes this party's outgoing direction; the peer's next recv() throws.
  void close() { outgoing().close(); }

  const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }

 private:
  detail::Pipe& outgoing() { return is_a_ ? link_->a_to_b : link_->b_to_a; }
  detail::Pipe& incoming() { return is_a_ ? link_->b_to_a : link_->a_to_b; }

  std::shared_ptr<detail::Link> link_;
  bool is_a_;
  TrafficStats stats_;
};

/// Creates a connected endpoint pair (first = party A / sender side by
/// convention, second = party B).
inline std::pair<Endpoint, Endpoint> make_channel(LatencyModel latency = {}) {
  auto link = std::make_shared<detail::Link>();
  link->latency = latency;
  return {Endpoint(link, true), Endpoint(link, false)};
}

}  // namespace ppds::net
