#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "ppds/common/bytes.hpp"
#include "ppds/common/error.hpp"
#include "ppds/net/control.hpp"
#include "ppds/net/framing.hpp"

/// \file channel.hpp
/// In-process simulated network between two protocol parties.
///
/// Each party of a two-party protocol runs on its own thread and talks
/// through an Endpoint. The pair shares two blocking FIFO queues (one per
/// direction) plus traffic counters, so every experiment can report the
/// exact communication cost (bytes and message rounds) of a protocol run —
/// the distributed-systems measurement the paper's setting implies.
///
/// Resilience semantics (docs/PROTOCOL.md §6):
///  * every message travels inside a Frame (framing.hpp) whose session id,
///    sequence number, stage tag and checksum are validated on receipt;
///  * recv() honors a Deadline and throws TimeoutError instead of blocking
///    forever on a silent peer;
///  * queues are BOUNDED: a send that would exceed the byte cap throws
///    BackpressureError rather than buffering without limit;
///  * close() tears down BOTH directions (TCP close, not shutdown); already
///    queued messages still drain, then recv() throws ProtocolError, and
///    further sends throw immediately.
///
/// An optional LatencyModel charges simulated wire time per message; the
/// charge is accounted, not slept, so benches stay fast while still
/// reporting network cost. Wire time and TrafficStats::bytes cover payload
/// bytes only; frame-header bytes are tracked in overhead_bytes.

namespace ppds::net {

/// Simulated link characteristics. Cost per message =
/// latency_us + bytes * 8 / bandwidth_mbps microseconds.
struct LatencyModel {
  double latency_us = 0.0;
  double bandwidth_mbps = 0.0;  ///< 0 means infinite bandwidth.

  double cost_us(std::size_t bytes) const {
    double us = latency_us;
    if (bandwidth_mbps > 0.0) {
      us += static_cast<double>(bytes) * 8.0 / bandwidth_mbps;
    }
    return us;
  }
};

/// Traffic statistics of one endpoint (what this party SENT).
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;           ///< payload bytes
  std::uint64_t overhead_bytes = 0;  ///< frame-header bytes
  double simulated_wire_us = 0.0;
};

/// Absolute receive deadline. Deadline{} (or never()) blocks indefinitely;
/// after(d) expires d from now.
class Deadline {
 public:
  Deadline() = default;

  static Deadline never() { return Deadline{}; }

  static Deadline after(std::chrono::milliseconds wait) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() + wait;
    return d;
  }

  bool is_never() const { return !at_.has_value(); }
  std::chrono::steady_clock::time_point at() const { return *at_; }

  /// Milliseconds left before the deadline (clamped at zero once expired);
  /// nullopt for a never-expiring deadline. Socket transports feed this to
  /// poll(2); diagnostics report it as the remaining budget.
  std::optional<std::chrono::milliseconds> remaining() const {
    if (!at_.has_value()) return std::nullopt;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        *at_ - std::chrono::steady_clock::now());
    return left.count() > 0 ? left : std::chrono::milliseconds{0};
  }

  bool expired() const {
    return at_.has_value() && std::chrono::steady_clock::now() >= *at_;
  }

 private:
  std::optional<std::chrono::steady_clock::time_point> at_;
};

/// Tunables of a channel pair. The byte cap bounds each DIRECTION's queued
/// payload; one full OMPE request (tens of MB) plus headroom fits the
/// default comfortably, while a producer that outruns a stalled peer fails
/// fast instead of OOMing the process.
struct ChannelOptions {
  LatencyModel latency;
  std::size_t max_queue_bytes = std::size_t{1} << 30;  // 1 GiB
};

namespace detail {

/// One framed message in flight.
struct Frame {
  FrameHeader header;
  Bytes payload;
};

/// One direction of the duplex link: a bounded blocking queue of frames.
class Pipe {
 public:
  explicit Pipe(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  void push(Frame frame) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        throw ProtocolError("send on closed channel");
      }
      if (queued_bytes_ + frame.payload.size() > max_bytes_) {
        // Diagnosable from the log alone: the offending frame, the depth of
        // the undrained queue, and the configured cap.
        throw BackpressureError(
            "channel queue over byte cap: sending " +
            std::to_string(frame.payload.size()) + "-byte frame onto " +
            std::to_string(queue_.size()) + " queued frames (" +
            std::to_string(queued_bytes_) + " bytes) would exceed the " +
            std::to_string(max_bytes_) + "-byte limit; peer is not draining");
      }
      queued_bytes_ += frame.payload.size();
      queue_.push_back(std::move(frame));
    }
    cv_.notify_one();
  }

  Frame pop(const Deadline& deadline) {
    const auto start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    const auto ready = [&] { return !queue_.empty() || closed_; };
    if (deadline.is_never()) {
      cv_.wait(lock, ready);
    } else if (!cv_.wait_until(lock, deadline.at(), ready)) {
      const auto elapsed =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start);
      const auto budget =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline.at() - start);
      throw TimeoutError("recv deadline exceeded after " +
                         std::to_string(elapsed.count()) + " ms (budget at "
                         "entry " + std::to_string(budget.count()) +
                         " ms, queue empty); peer silent");
    }
    if (queue_.empty()) {
      throw ProtocolError("channel closed by peer");
    }
    Frame frame = std::move(queue_.front());
    queue_.pop_front();
    queued_bytes_ -= frame.payload.size();
    return frame;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Frame> queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t max_bytes_;
  bool closed_ = false;
};

struct Link {
  explicit Link(const ChannelOptions& options)
      : a_to_b(options.max_queue_bytes),
        b_to_a(options.max_queue_bytes),
        latency(options.latency) {}

  Pipe a_to_b;
  Pipe b_to_a;
  LatencyModel latency;
};

}  // namespace detail

/// One side of a duplex channel. Thread-safe against its peer; a single
/// endpoint must only be used from one thread.
///
/// send() stamps every payload with a FrameHeader (stage, per-direction
/// sequence number, session id, checksum); recv() validates the peer's
/// header against this endpoint's own state and throws ProtocolError with a
/// diagnostic naming expected vs. received on any mismatch. Both parties
/// must therefore advance set_stage()/set_session_id() symmetrically.
///
/// The frame path runs through two protected virtual hooks — deliver() on
/// the way out, fetch() on the way in — so decorators (FaultyEndpoint)
/// inject faults BELOW the framing layer, where a real network corrupts
/// traffic, and the validation above catches them.
///
/// The same hooks make the TRANSPORT pluggable: a subclass constructed
/// through the protected default constructor owns no in-process link and
/// instead moves real bytes in deliver()/fetch() (net/socket.hpp). All the
/// framing, validation, deadline, stats and transcript machinery above the
/// hooks is shared verbatim between the in-process and the socket paths.
class Endpoint {
 public:
  Endpoint(std::shared_ptr<detail::Link> link, bool is_a)
      : link_(std::move(link)), is_a_(is_a) {}

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;
  /// Move transfers the link; the moved-from endpoint is inert (its
  /// destructor does nothing and any send/recv throws ProtocolError).
  Endpoint(Endpoint&&) = default;

  virtual ~Endpoint() {
    if (link_) {
      link_->a_to_b.close();
      link_->b_to_a.close();
    }
  }

  /// Sends one framed message to the peer. Throws BackpressureError when the
  /// peer's queue is over its byte cap and ProtocolError once the channel is
  /// closed.
  void send(Bytes payload) {
    require_live();
    const std::size_t payload_bytes = payload.size();
    detail::Frame frame;
    frame.header.stage = stage_;
    frame.header.seq = send_seq_;
    frame.header.session_id = session_id_;
    frame.header.checksum = frame_checksum(frame.header, payload);
    frame.payload = std::move(payload);
    if (transcript_enabled_) {
      sent_transcript_ = fold_transcript(sent_transcript_, frame.payload);
    }
    deliver(std::move(frame));
    // Committed only on success: a send refused by backpressure (or a
    // closed channel) consumes no sequence number, so the channel stays
    // usable once the peer drains the queue.
    ++send_seq_;
    stats_.messages += 1;
    stats_.bytes += payload_bytes;
    stats_.overhead_bytes += kFrameHeaderBytes;
    if (link_) {
      stats_.simulated_wire_us += link_->latency.cost_us(payload_bytes);
    }
  }

  /// Blocks until the peer's next message arrives or \p deadline expires
  /// (default: the deadline installed by set_recv_deadline, else forever).
  /// Throws TimeoutError past the deadline, ProtocolError if the channel is
  /// closed or the frame fails validation, and BusyError when the peer shed
  /// this connection with a control frame (net/control.hpp) — control
  /// frames are validated for version and checksum only and may arrive at
  /// ANY protocol point, including mid-handshake.
  Bytes recv(const Deadline& deadline) {
    require_live();
    detail::Frame frame = fetch(deadline);
    if (frame.header.stage == Stage::kControl) {
      validate_control(frame);
      throw BusyError(decode_busy(frame.payload));
    }
    validate(frame);
    ++recv_seq_;
    if (transcript_enabled_) {
      recv_transcript_ = fold_transcript(recv_transcript_, frame.payload);
    }
    return std::move(frame.payload);
  }

  Bytes recv() { return recv(recv_deadline_); }

  /// Closes the whole link (both directions). Messages already queued still
  /// drain; after that every recv() throws ProtocolError, as does any send.
  virtual void close() {
    require_live();
    link_->a_to_b.close();
    link_->b_to_a.close();
  }

  /// Advances the protocol stage stamped on outgoing frames AND expected on
  /// incoming ones. Both parties call this at the same protocol points.
  void set_stage(Stage stage) { stage_ = stage; }
  Stage stage() const { return stage_; }

  /// Adopts a session id after the handshake agreed on one (both sides).
  void set_session_id(std::uint64_t id) { session_id_ = id; }
  std::uint64_t session_id() const { return session_id_; }

  /// Default deadline applied by recv() without an explicit one.
  void set_recv_deadline(Deadline deadline) { recv_deadline_ = deadline; }
  const Deadline& recv_deadline() const { return recv_deadline_; }

  const TrafficStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }

  /// Opt-in payload-transcript digests: when enabled, every payload this
  /// endpoint sends (recvs) is folded — in order, headers excluded — into a
  /// 64-bit running digest. Two endpoints that exchanged bit-identical
  /// payload sequences report equal digests, which is how the tests prove
  /// the socket transport carries the SAME protocol transcript as the
  /// in-process channel. Off by default: folding costs a full pass over
  /// every payload (OMPE requests run to tens of MB).
  void enable_transcript(bool on) { transcript_enabled_ = on; }
  void reset_transcript() { sent_transcript_ = recv_transcript_ = 0; }
  std::uint64_t sent_transcript() const { return sent_transcript_; }
  std::uint64_t recv_transcript() const { return recv_transcript_; }

 protected:
  /// Transport-subclass constructor: no in-process link; the subclass moves
  /// real bytes in its deliver()/fetch()/close() overrides and reports its
  /// own liveness via transport_live().
  Endpoint() : link_(nullptr), is_a_(true) {}
  /// Hands a stamped frame to the outgoing pipe. Decorators override this to
  /// drop/duplicate/corrupt/delay traffic below the framing layer.
  virtual void deliver(detail::Frame&& frame) {
    outgoing().push(std::move(frame));
  }

  /// Takes the next frame off the incoming pipe (validation happens in
  /// recv() after this returns).
  virtual detail::Frame fetch(const Deadline& deadline) {
    return incoming().pop(deadline);
  }

  detail::Pipe& outgoing() { return is_a_ ? link_->a_to_b : link_->b_to_a; }
  detail::Pipe& incoming() { return is_a_ ? link_->b_to_a : link_->a_to_b; }

  /// Whether this endpoint still has a transport behind it. The in-process
  /// default is "the link was not moved away"; socket endpoints override.
  virtual bool transport_live() const { return link_ != nullptr; }

  void require_live() const {
    if (!transport_live()) {
      throw ProtocolError("use of moved-from or torn-down endpoint");
    }
  }

 private:
  /// Order-sensitive payload fold for the transcript digests: the payload
  /// bytes are checksummed under a fixed all-defaults header (so seq /
  /// stage / session differences between transports cannot leak in) and
  /// chained through SplitMix64.
  static std::uint64_t fold_transcript(std::uint64_t acc,
                                       const Bytes& payload) {
    return splitmix64(acc, frame_checksum(FrameHeader{}, payload));
  }

  /// Control frames bypass the session discipline (they may arrive at any
  /// protocol point, and their sender closes right after), but corruption
  /// must still fail loudly: version and checksum are checked exactly as
  /// for data frames. A control frame consumes NO receive sequence number.
  void validate_control(const detail::Frame& frame) const {
    const FrameHeader& h = frame.header;
    if (h.version != kFrameVersion) {
      throw ProtocolError("frame version mismatch (expected " +
                          std::to_string(kFrameVersion) + ", got " +
                          std::to_string(h.version) + ")");
    }
    if (h.checksum != frame_checksum(h, frame.payload)) {
      throw ProtocolError(
          "control frame checksum mismatch: corrupted or truncated");
    }
  }

  void validate(const detail::Frame& frame) const {
    const FrameHeader& h = frame.header;
    if (h.version != kFrameVersion) {
      throw ProtocolError("frame version mismatch (expected " +
                          std::to_string(kFrameVersion) + ", got " +
                          std::to_string(h.version) + ")");
    }
    if (h.checksum != frame_checksum(h, frame.payload)) {
      throw ProtocolError("frame checksum mismatch (seq " +
                          std::to_string(h.seq) + ", stage " +
                          stage_name(h.stage) + "): corrupted or truncated");
    }
    if (h.session_id != session_id_) {
      throw ProtocolError("cross-session message (expected session " +
                          std::to_string(session_id_) + ", got " +
                          std::to_string(h.session_id) + ")");
    }
    if (h.seq != recv_seq_) {
      throw ProtocolError(
          h.seq < recv_seq_
              ? "replayed message (expected seq " + std::to_string(recv_seq_) +
                    ", got " + std::to_string(h.seq) + ")"
              : "out-of-order or dropped message (expected seq " +
                    std::to_string(recv_seq_) + ", got " +
                    std::to_string(h.seq) + ")");
    }
    if (h.stage != stage_) {
      throw ProtocolError("protocol stage mismatch (expected " +
                          std::string(stage_name(stage_)) + ", got " +
                          stage_name(h.stage) + ")");
    }
  }

  std::shared_ptr<detail::Link> link_;
  bool is_a_;
  TrafficStats stats_;
  Stage stage_ = Stage::kNone;
  std::uint64_t session_id_ = 0;
  std::uint32_t send_seq_ = 0;
  std::uint32_t recv_seq_ = 0;
  Deadline recv_deadline_;
  bool transcript_enabled_ = false;
  std::uint64_t sent_transcript_ = 0;
  std::uint64_t recv_transcript_ = 0;
};

/// Creates a connected endpoint pair (first = party A / sender side by
/// convention, second = party B).
inline std::pair<Endpoint, Endpoint> make_channel(
    const ChannelOptions& options) {
  auto link = std::make_shared<detail::Link>(options);
  return {Endpoint(link, true), Endpoint(link, false)};
}

inline std::pair<Endpoint, Endpoint> make_channel(LatencyModel latency = {}) {
  ChannelOptions options;
  options.latency = latency;
  return make_channel(options);
}

/// Sends one busy control frame on \p channel (stamped at Stage::kControl
/// so the peer's recv surfaces it as BusyError wherever it is waiting) and
/// restores the endpoint's previous stage. The caller closes the channel
/// right after — a busy frame is a goodbye, not a conversation.
inline void send_busy(Endpoint& channel, const BusyFrame& busy) {
  const Stage before = channel.stage();
  channel.set_stage(Stage::kControl);
  try {
    channel.send(encode_busy(busy));
  } catch (...) {
    channel.set_stage(before);
    throw;
  }
  channel.set_stage(before);
}

}  // namespace ppds::net
