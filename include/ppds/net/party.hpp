#pragma once

#include <exception>
#include <functional>
#include <thread>
#include <utility>

#include "ppds/net/channel.hpp"

/// \file party.hpp
/// Helper to run a two-party protocol: each party body runs on its own
/// thread over a channel pair; exceptions from either side are re-thrown to
/// the caller (first the A side, then the B side).

namespace ppds::net {

/// Result of a two-party run: what each side returned plus traffic stats.
template <typename ResultA, typename ResultB>
struct TwoPartyOutcome {
  ResultA a;
  ResultB b;
  TrafficStats a_sent;
  TrafficStats b_sent;
};

/// Runs \p party_a and \p party_b concurrently over the GIVEN endpoints
/// (already connected; possibly decorated, e.g. FaultyEndpoint). Blocks
/// until both finish. A throwing party closes the channel so its peer
/// unblocks with ProtocolError instead of hanging.
template <typename FnA, typename FnB>
auto run_two_party_on(Endpoint& end_a, Endpoint& end_b, FnA&& party_a,
                      FnB&& party_b)
    -> TwoPartyOutcome<std::invoke_result_t<FnA, Endpoint&>,
                       std::invoke_result_t<FnB, Endpoint&>> {
  using ResultA = std::invoke_result_t<FnA, Endpoint&>;
  using ResultB = std::invoke_result_t<FnB, Endpoint&>;

  ResultB result_b{};
  std::exception_ptr error_b;
  std::thread thread_b([&] {
    try {
      result_b = party_b(end_b);
    } catch (...) {
      error_b = std::current_exception();
      try {
        end_b.close();  // unblock the peer
      } catch (...) {   // already closed (e.g. by a disconnect fault)
      }
    }
  });

  ResultA result_a{};
  std::exception_ptr error_a;
  try {
    result_a = party_a(end_a);
  } catch (...) {
    error_a = std::current_exception();
    try {
      end_a.close();
    } catch (...) {
    }
  }

  thread_b.join();
  if (error_a) std::rethrow_exception(error_a);
  if (error_b) std::rethrow_exception(error_b);

  return {std::move(result_a), std::move(result_b), end_a.stats(),
          end_b.stats()};
}

/// Runs \p party_a and \p party_b concurrently over a fresh channel.
/// Both callables take an Endpoint&. Blocks until both finish.
template <typename FnA, typename FnB>
auto run_two_party(FnA&& party_a, FnB&& party_b, LatencyModel latency = {})
    -> TwoPartyOutcome<std::invoke_result_t<FnA, Endpoint&>,
                       std::invoke_result_t<FnB, Endpoint&>> {
  auto [end_a, end_b] = make_channel(latency);
  return run_two_party_on(end_a, end_b, std::forward<FnA>(party_a),
                          std::forward<FnB>(party_b));
}

}  // namespace ppds::net
