#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "ppds/common/bytes.hpp"
#include "ppds/common/rng.hpp"

/// \file framing.hpp
/// Lightweight per-message wire frame for the simulated transport.
///
/// Every message an Endpoint sends is wrapped in a FrameHeader carrying a
/// session id, a per-direction monotone sequence number, a protocol stage
/// tag and a 64-bit payload checksum. The receiving endpoint validates all
/// four on every recv(), so the failure modes a real network exhibits —
/// replayed, reordered, dropped, truncated or bit-flipped messages, and
/// messages leaking across sessions — abort DETERMINISTICALLY with a typed
/// ProtocolError naming what was expected and what arrived, instead of
/// desynchronizing the protocol state machines into garbage math.
///
/// The header never touches the payload bytes: protocol transcripts (which
/// several tests pin bit-identical across performance knobs) are unchanged,
/// and TrafficStats keeps counting payload bytes only (header bytes are
/// tracked separately as overhead).

namespace ppds::net {

/// Protocol stage a frame belongs to. Both parties advance their endpoint's
/// stage SYMMETRICALLY at the same protocol points (Endpoint::set_stage), so
/// a frame from an earlier stage arriving late — or a confused peer skipping
/// a stage — is caught by name on receipt.
enum class Stage : std::uint8_t {
  kNone = 0,         ///< no stage discipline (raw channels, unit tests)
  kHandshake = 1,    ///< session hello / ack
  kOtSetup = 2,      ///< batched OT precompute (announce / blinded keys)
  kNorms = 3,        ///< similarity step 0: Bob's vector moduli
  kOmpeRequest = 4,  ///< the receiver's disguised (node, z) bundle
  kOtTransfer = 5,   ///< the m-out-of-M OT of masked evaluations
  /// Out-of-band control frames (net/control.hpp): validated for version
  /// and checksum only, NEVER against the session's seq/stage/session-id
  /// state — a daemon shedding load answers connections it will not serve,
  /// at whatever protocol point the client happens to be waiting.
  kControl = 6,
};

/// Human-readable stage name for ProtocolError diagnostics.
inline const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kNone: return "none";
    case Stage::kHandshake: return "handshake";
    case Stage::kOtSetup: return "ot-setup";
    case Stage::kNorms: return "norms";
    case Stage::kOmpeRequest: return "ompe-request";
    case Stage::kOtTransfer: return "ot-transfer";
    case Stage::kControl: return "control";
  }
  return "unknown";
}

/// Wire-frame version; bumped when the header layout changes.
inline constexpr std::uint8_t kFrameVersion = 1;

/// Per-message header. Stamped by Endpoint::send, validated by
/// Endpoint::recv; payload bytes are carried alongside, never prefixed into
/// the payload buffer (prepending would memmove multi-megabyte requests).
struct FrameHeader {
  std::uint8_t version = kFrameVersion;
  Stage stage = Stage::kNone;
  std::uint32_t seq = 0;         ///< per-direction monotone counter
  std::uint64_t session_id = 0;  ///< 0 until a session is established
  std::uint64_t checksum = 0;    ///< frame_checksum over header + payload
};

namespace detail_framing {

/// One lane step: xor-rotate-multiply. Bijective in `lane` for any fixed
/// `word` (and vice versa), so a flipped payload bit always changes its
/// lane's final value.
inline std::uint64_t mix_lane(std::uint64_t lane, std::uint64_t word) {
  lane ^= word;
  lane = (lane << 23) | (lane >> 41);
  return lane * 0x9e3779b97f4a7c15ULL;
}

}  // namespace detail_framing

/// 64-bit integrity checksum over the header fields and the payload. The
/// payload is folded through FOUR independent xor-rotate-multiply lanes so
/// the multiplies pipeline instead of forming one serial dependency chain —
/// a frame is checksummed twice (send + validate) and OMPE payloads run to
/// tens of MB, so the serial SplitMix64 variant showed up as whole
/// milliseconds per round in micro_ompe. Not cryptographic: it detects
/// faults; tampering is the protocol layer's threat model. Covers
/// version/stage/seq/session/length, so header corruption and truncation
/// are caught too.
/// (noinline: when GCC 12 inlines the word loop into a caller with a small
/// compile-time-known payload, its -Warray-bounds pass flags the guarded
/// 8-byte loads as out-of-bounds — a false positive cousin of PR 105329.
/// One call per message, so the call cost is noise.)
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((noinline))
#endif
inline std::uint64_t
frame_checksum(const FrameHeader& header,
               std::span<const std::uint8_t> payload) {
  const std::uint64_t acc = splitmix64(
      splitmix64(0x70706473u,  // "ppds"
                 (static_cast<std::uint64_t>(header.version) << 48) ^
                     (static_cast<std::uint64_t>(header.stage) << 40) ^
                     header.seq),
      header.session_id);
  std::uint64_t lanes[8] = {acc ^ 1, acc ^ 2, acc ^ 3, acc ^ 4,
                            acc ^ 5, acc ^ 6, acc ^ 7, acc ^ 8};
  const std::uint8_t* p = payload.data();
  std::size_t i = 0;
  for (; i + 64 <= payload.size(); i += 64) {
    for (std::size_t l = 0; l < 8; ++l) {
      lanes[l] = detail_framing::mix_lane(lanes[l], load_le64(p + i + 8 * l));
    }
  }
  std::size_t lane = 0;
  for (; i + 8 <= payload.size(); i += 8, ++lane) {
    lanes[lane] = detail_framing::mix_lane(lanes[lane], load_le64(p + i));
  }
  if (i < payload.size()) {
    std::uint64_t tail = 0;
    std::memcpy(&tail, p + i, payload.size() - i);
    lanes[7] = detail_framing::mix_lane(lanes[7], tail);
  }
  std::uint64_t out = splitmix64(acc, payload.size());
  for (std::uint64_t l : lanes) out = splitmix64(out, l);
  return out;
}

/// Serialized header size (the simulated wire overhead per message).
inline constexpr std::size_t kFrameHeaderBytes = 1 + 1 + 4 + 8 + 8;

/// Little-endian wire layout of a FrameHeader (the socket transport's
/// on-the-wire form; the in-process channel passes the struct directly):
///   u8 version | u8 stage | u32 seq | u64 session_id | u64 checksum
inline void store_frame_header(std::uint8_t* out, const FrameHeader& h) {
  out[0] = h.version;
  out[1] = static_cast<std::uint8_t>(h.stage);
  for (int i = 0; i < 4; ++i) {
    out[2 + i] = static_cast<std::uint8_t>(h.seq >> (8 * i));
  }
  store_le64(out + 6, h.session_id);
  store_le64(out + 14, h.checksum);
}

inline FrameHeader load_frame_header(const std::uint8_t* in) {
  FrameHeader h;
  h.version = in[0];
  h.stage = static_cast<Stage>(in[1]);
  h.seq = 0;
  for (int i = 0; i < 4; ++i) {
    h.seq |= static_cast<std::uint32_t>(in[2 + i]) << (8 * i);
  }
  h.session_id = load_le64(in + 6);
  h.checksum = load_le64(in + 14);
  return h;
}

}  // namespace ppds::net
