#pragma once

#include <span>
#include <string>

#include "ppds/common/bytes.hpp"
#include "ppds/math/vec.hpp"

/// \file kernel.hpp
/// SVM kernel functions (Section III-A.2 of the paper):
///   linear      K(x,y) = x . y
///   polynomial  K(x,y) = (a0 x . y + b0)^p
///   rbf         K(x,y) = exp(-gamma ||x - y||^2)
///   sigmoid     K(x,y) = tanh(a0 x . y + c0)
///
/// The paper's experiments use linear and polynomial (a0 = 1/n, b0 = 0,
/// p = 3); RBF/sigmoid are supported end-to-end via Taylor truncation in the
/// privacy-preserving path.

namespace ppds::svm {

enum class KernelType : std::uint8_t {
  kLinear = 0,
  kPolynomial = 1,
  kRbf = 2,
  kSigmoid = 3,
};

/// Kernel selection plus parameters. Value-semantic, serializable.
struct Kernel {
  KernelType type = KernelType::kLinear;
  double a0 = 1.0;     ///< inner-product scale (polynomial, sigmoid)
  double b0 = 0.0;     ///< additive offset (polynomial)
  unsigned degree = 3; ///< polynomial degree p
  double gamma = 1.0;  ///< RBF width
  double c0 = 0.0;     ///< sigmoid offset

  static Kernel linear() { return Kernel{}; }

  /// The paper's default polynomial kernel: a0 = 1/n, b0 = 0, p = 3.
  static Kernel paper_polynomial(std::size_t n_features, unsigned p = 3) {
    Kernel k;
    k.type = KernelType::kPolynomial;
    k.a0 = 1.0 / static_cast<double>(n_features);
    k.b0 = 0.0;
    k.degree = p;
    return k;
  }

  static Kernel rbf(double gamma_value) {
    Kernel k;
    k.type = KernelType::kRbf;
    k.gamma = gamma_value;
    return k;
  }

  static Kernel sigmoid(double a0_value, double c0_value) {
    Kernel k;
    k.type = KernelType::kSigmoid;
    k.a0 = a0_value;
    k.c0 = c0_value;
    return k;
  }

  double operator()(std::span<const double> x, std::span<const double> y) const;

  std::string name() const;

  void serialize(ByteWriter& w) const;
  static Kernel deserialize(ByteReader& r);

  friend bool operator==(const Kernel& a, const Kernel& b) = default;
};

}  // namespace ppds::svm
