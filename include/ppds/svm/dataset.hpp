#pragma once

#include <string>
#include <vector>

#include "ppds/common/rng.hpp"
#include "ppds/math/vec.hpp"

/// \file dataset.hpp
/// Labeled binary-classification datasets and the [-1, 1] feature scaling
/// the paper applies ("all the data have been scaled to [-1, 1]").

namespace ppds::svm {

/// A labeled dataset: y[i] in {+1, -1}.
struct Dataset {
  std::vector<math::Vec> x;
  std::vector<int> y;

  std::size_t size() const { return x.size(); }
  std::size_t dim() const { return x.empty() ? 0 : x.front().size(); }

  /// Throws InvalidArgument unless shapes and labels are consistent.
  void validate() const;

  /// Appends one sample.
  void push(math::Vec features, int label);
};

/// Deterministically shuffles and splits into (train, test) with
/// \p train_fraction of the samples in train.
std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double train_fraction, Rng& rng);

/// Splits into \p parts nearly equal disjoint subsets (used by the Table II
/// experiment: diabetes split into S1..S4).
std::vector<Dataset> split_subsets(const Dataset& data, std::size_t parts,
                                   Rng& rng);

/// Per-feature affine map onto [-1, 1], fitted on one dataset (train) and
/// applied to others (test) — matching LIBSVM's svm-scale behaviour.
class FeatureScaler {
 public:
  /// Learns per-feature min/max. Constant features map to 0.
  void fit(const Dataset& data);

  math::Vec transform(const math::Vec& x) const;
  Dataset transform(const Dataset& data) const;

  bool fitted() const { return !lo_.empty(); }

 private:
  math::Vec lo_, hi_;
};

/// Reads a dataset in LIBSVM's sparse text format
/// ("label index:value index:value ...", 1-based indices).
Dataset read_libsvm(const std::string& path, std::size_t dim_hint = 0);

/// Writes LIBSVM sparse text format.
void write_libsvm(const std::string& path, const Dataset& data);

/// Fraction of samples where prediction matches the label, in [0, 1].
double accuracy(const std::vector<int>& predicted, const std::vector<int>& truth);

}  // namespace ppds::svm
