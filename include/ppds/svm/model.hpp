#pragma once

#include <vector>

#include "ppds/common/bytes.hpp"
#include "ppds/svm/kernel.hpp"

/// \file model.hpp
/// Trained SVM decision function d(t) = sum_s coeff_s K(x_s, t) + b, where
/// coeff_s = alpha_s * y_s over the support vectors (Eq. 1 of the paper).
/// This is the "trained model" whose privacy the paper protects: it is a
/// party's private asset, never shipped in the clear during the protocols.

namespace ppds::svm {

/// Immutable trained binary classifier.
class SvmModel {
 public:
  SvmModel() = default;

  SvmModel(Kernel kernel, std::vector<math::Vec> support_vectors,
           std::vector<double> coeffs, double bias);

  /// Raw decision value d(t); the class is its sign.
  double decision_value(std::span<const double> t) const;

  /// sign(d(t)) as +1/-1 (0 maps to +1, an arbitrary but fixed convention).
  int predict(std::span<const double> t) const;

  std::vector<int> predict_all(const std::vector<math::Vec>& samples) const;

  /// For a linear kernel, collapses the support-vector expansion to the
  /// explicit hyperplane (w, b) — the form the similarity-evaluation scheme
  /// needs. Throws InvalidArgument for nonlinear kernels.
  math::Vec linear_weights() const;

  const Kernel& kernel() const { return kernel_; }
  const std::vector<math::Vec>& support_vectors() const { return sv_; }
  const std::vector<double>& coefficients() const { return coeff_; }
  double bias() const { return bias_; }
  std::size_t dim() const { return sv_.empty() ? 0 : sv_.front().size(); }
  std::size_t num_support_vectors() const { return sv_.size(); }

  Bytes serialize() const;
  static SvmModel deserialize(std::span<const std::uint8_t> data);

 private:
  Kernel kernel_;
  std::vector<math::Vec> sv_;
  std::vector<double> coeff_;  ///< alpha_s * y_s
  double bias_ = 0.0;
};

}  // namespace ppds::svm
