#pragma once

#include <span>

#include "ppds/svm/smo.hpp"

/// \file validation.hpp
/// k-fold cross-validation and box-constraint selection for the SVM
/// substrate. The paper fixes its hyperparameters; these utilities exist so
/// downstream users (and our dataset-calibration tooling) can pick a sane C
/// the way LIBSVM users would (grid search over a CV estimate).

namespace ppds::svm {

/// Result of a k-fold cross-validation run.
struct CvResult {
  double mean_accuracy = 0.0;
  double stddev = 0.0;
  std::vector<double> fold_accuracies;
};

/// Shuffled k-fold cross-validation accuracy of (kernel, params) on `data`.
/// Folds are as equal as possible; every sample is tested exactly once.
CvResult cross_validate(const Dataset& data, const Kernel& kernel,
                        const SmoParams& params, std::size_t folds, Rng& rng);

/// Grid search: returns the candidate C with the best k-fold CV accuracy
/// (ties break toward the smaller C — prefer the stronger regularizer).
double select_c(const Dataset& data, const Kernel& kernel,
                std::span<const double> candidates, std::size_t folds,
                Rng& rng);

}  // namespace ppds::svm
