#pragma once

#include <vector>

#include "ppds/svm/smo.hpp"

/// \file multiclass.hpp
/// One-vs-one multiclass classification on top of the binary C-SVC.
///
/// The paper's schemes are binary (SVM sign); real deployments of its
/// motivating applications (disease diagnosis, trend categories) need more
/// classes. One-vs-one composes K(K-1)/2 binary models with majority
/// voting — and because each binary decision is exactly the paper's
/// protocol, the private variant (ppds/core/multiclass.hpp) inherits the
/// privacy argument per pairwise query.

namespace ppds::svm {

/// Labeled dataset with arbitrary integer class labels.
struct MulticlassDataset {
  std::vector<math::Vec> x;
  std::vector<int> y;

  std::size_t size() const { return x.size(); }
  std::size_t dim() const { return x.empty() ? 0 : x.front().size(); }

  void push(math::Vec features, int label) {
    x.push_back(std::move(features));
    y.push_back(label);
  }
};

/// One binary model of the one-vs-one decomposition: predicts +1 for
/// `positive_label`, -1 for `negative_label`.
struct PairwiseModel {
  int positive_label = 0;
  int negative_label = 0;
  SvmModel model;
};

/// Trained one-vs-one multiclass classifier.
class MulticlassModel {
 public:
  /// Trains K(K-1)/2 binary SVMs (same kernel and params for every pair).
  static MulticlassModel train(const MulticlassDataset& data,
                               const Kernel& kernel,
                               const SmoParams& params = {});

  /// Majority vote over the pairwise decisions; ties break toward the
  /// smallest label (deterministic).
  int predict(std::span<const double> t) const;

  std::vector<int> predict_all(const std::vector<math::Vec>& samples) const;

  const std::vector<PairwiseModel>& pairs() const { return pairs_; }
  const std::vector<int>& labels() const { return labels_; }
  std::size_t num_classes() const { return labels_.size(); }

  /// Vote tally resolution shared with the private variant: given the
  /// pairwise SIGNS in pairs() order, returns the winning label.
  int resolve_votes(std::span<const int> pairwise_signs) const;

 private:
  std::vector<int> labels_;         ///< sorted distinct class labels
  std::vector<PairwiseModel> pairs_;
};

}  // namespace ppds::svm
