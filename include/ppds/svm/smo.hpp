#pragma once

#include <cstddef>

#include "ppds/svm/dataset.hpp"
#include "ppds/svm/model.hpp"

/// \file smo.hpp
/// C-SVC training by Sequential Minimal Optimization.
///
/// This is the library's stand-in for LIBSVM [29] (not available offline):
/// the same dual problem
///     min  1/2 a^T Q a - e^T a,   0 <= a_i <= C,  y^T a = 0,
///     Q_ij = y_i y_j K(x_i, x_j)
/// solved with the maximal-violating-pair working-set selection using the
/// second-order heuristic of Fan, Chen & Lin (the LIBSVM default), a bounded
/// kernel-row cache, and the standard free-SV rule for the bias.
///
/// The downstream protocols consume only the resulting decision function, so
/// any correct SMO implementation exercises the paper's code paths.

namespace ppds::svm {

/// Training hyperparameters.
struct SmoParams {
  double c = 1.0;              ///< box constraint C
  double tolerance = 1e-3;     ///< KKT stopping tolerance
  std::size_t max_iterations = 200000;
  std::size_t cache_rows = 512;  ///< kernel rows kept in the LRU cache
};

/// Diagnostics from a training run.
struct TrainStats {
  std::size_t iterations = 0;
  std::size_t support_vectors = 0;
  bool converged = false;
  double train_seconds = 0.0;
};

/// Trains a binary C-SVC. The dataset must be validated (+/-1 labels,
/// rectangular features) and should be scaled to [-1, 1] first.
SvmModel train_svm(const Dataset& data, const Kernel& kernel,
                   const SmoParams& params = {}, TrainStats* stats = nullptr);

}  // namespace ppds::svm
