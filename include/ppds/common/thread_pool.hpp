#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "ppds/common/error.hpp"

/// \file thread_pool.hpp
/// Minimal fixed-size worker pool for running independent protocol sessions
/// concurrently (see ppds/core/session_pool.hpp). Standard-library only; a
/// single mutex + condition variable guards the FIFO queue, which is plenty
/// for the coarse-grained tasks this library schedules (whole two-party
/// sessions, milliseconds to seconds each).

namespace ppds {

class ThreadPool {
 public:
  /// Spawns \p threads workers immediately (at least one).
  explicit ThreadPool(std::size_t threads = default_concurrency()) {
    const std::size_t count = threads == 0 ? 1 : threads;
    workers_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Drains the queue (queued tasks still run), then joins all workers.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues \p fn and returns a future for its result. Exceptions thrown
  /// by the task surface on future.get().
  template <typename F>
  std::future<std::invoke_result_t<F&>> submit(F&& fn) {
    using Result = std::invoke_result_t<F&>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      detail::require(!stopping_, "ThreadPool: submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Hardware concurrency with a floor of one (the standard allows zero).
  static std::size_t default_concurrency() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and nothing left to drain
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ppds
