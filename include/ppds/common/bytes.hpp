#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ppds/common/error.hpp"

/// \file bytes.hpp
/// Little-endian wire serialization used by every protocol message.
///
/// The format is deliberately trivial: fixed-width little-endian integers,
/// IEEE-754 doubles bit-cast to u64, and length-prefixed blobs. Both parties
/// of a protocol run share the exact encoder/decoder, and the simulated
/// network (ppds/net) counts these bytes to report communication cost.

namespace ppds {

/// std::allocator whose value-construction is DEFAULT-initialization: a
/// resize() that grows leaves the new elements uninitialized instead of
/// zero-filling them. The OMPE receiver's request body is tens of megabytes
/// whose every byte is overwritten by the point sweep immediately after
/// ByteWriter::append_raw — the vector's mandatory zero-fill was pure waste
/// (ROADMAP open item; before/after numbers in docs/PERFORMANCE.md §1.5).
/// Anyone reading an element they did not first write gets indeterminate
/// bytes, exactly as with a raw buffer.
// GCC 12's -Wstringop-overflow produces bogus "writing N bytes into a region
// of size M" errors when the element-wise construct loop of a
// custom-allocator vector copy is inlined and vectorized (PR 105329 family).
// The suppression is scoped to this allocator only — the warning stays live
// for the rest of the codebase.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif
template <typename T>
class default_init_allocator : public std::allocator<T> {
 public:
  template <typename U>
  struct rebind {
    using other = default_init_allocator<U>;
  };

  using std::allocator<T>::allocator;

  template <typename U>
  void construct(U* ptr) noexcept(std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }

  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    std::construct_at(ptr, std::forward<Args>(args)...);
  }
};
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

using Bytes = std::vector<std::uint8_t, default_init_allocator<std::uint8_t>>;

/// Views a string's characters as unsigned bytes. `unsigned char` may alias
/// any object, so this cast is well-defined; keeping it here (rather than
/// scattered through callers) gives the UB audit a single site to check.
inline std::span<const std::uint8_t> as_u8_span(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()),  // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
          s.size()};
}

/// Stores \p v little-endian into 8 bytes at \p out. Compilers lower the
/// shift loop to a single store on little-endian targets; the explicit form
/// keeps the wire format byte-order-defined everywhere.
inline void store_le64(std::uint8_t* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Loads a little-endian u64 from 8 bytes at \p in.
inline std::uint64_t load_le64(const std::uint8_t* in) noexcept {
  // GCC merges the byte-store loop in store_le64 into one mov but does NOT
  // merge the mirror-image load loop, which matters at tens of millions of
  // loads per OMPE round — take the memcpy fast path on little-endian hosts.
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, in, sizeof(v));
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    }
    return v;
  }
}

/// IEEE-754 double bit-cast through the little-endian u64 encoding.
inline void store_le_f64(std::uint8_t* out, double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  store_le64(out, bits);
}

inline double load_le_f64(const std::uint8_t* in) noexcept {
  const std::uint64_t bits = load_le64(in);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Pre-sizes the underlying buffer. Messages whose size is known up front
  /// (e.g. the OMPE request: M x (arity+1) x 8 bytes plus the header) should
  /// reserve once instead of growing through reallocation — the nonlinear
  /// classification request is tens of megabytes.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  /// Appends \p n UNINITIALIZED bytes and returns a mutable view of them, so
  /// bulk producers (possibly on several threads, each owning a disjoint
  /// slice) can serialize in place with store_le64/store_le_f64. The caller
  /// must write every byte of the view before the buffer is sent (Bytes uses
  /// default_init_allocator, so growth pays no zero-fill). The view is
  /// invalidated by any subsequent append.
  std::span<std::uint8_t> append_raw(std::size_t n) {
    const std::size_t at = buf_.size();
    buf_.resize(at + n);
    return std::span<std::uint8_t>(buf_).subspan(at, n);
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed blob.
  void bytes(std::span<const std::uint8_t> data) {
    u64(data.size());
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Raw append without a length prefix (caller knows the size).
  void raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  void str(const std::string& s) {
    u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void f64_vec(std::span<const double> v) {
    u64(v.size());
    for (double x : v) f64(x);
  }

  void u64_vec(std::span<const std::uint64_t> v) {
    u64(v.size());
    for (std::uint64_t x : v) u64(x);
  }

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes primitive values from a byte buffer; throws SerializationError on
/// truncation so malformed protocol messages abort the session cleanly.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Bytes bytes() {
    const std::uint64_t n = u64();
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  Bytes raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Zero-copy variant of raw(): consumes \p n bytes and returns a view into
  /// the underlying buffer (valid as long as the buffer outlives the view).
  /// Bulk consumers decode fixed-stride payloads in place with
  /// load_le64/load_le_f64 instead of paying a per-byte cursor walk.
  std::span<const std::uint8_t> view(std::size_t n) {
    need(n);
    std::span<const std::uint8_t> out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    // uint8_t -> char conversion per element; no pointer type punning.
    std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    std::vector<double> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
    return out;
  }

  std::vector<std::uint64_t> u64_vec() {
    const std::uint64_t n = u64();
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(u64());
    return out;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  /// Throws unless the whole buffer was consumed — catches messages that are
  /// longer than the receiver expects (a classic protocol-confusion bug).
  void expect_end() const {
    if (!exhausted()) throw SerializationError("trailing bytes in message");
  }

 private:
  void need(std::uint64_t n) const {
    if (pos_ + n > data_.size() || pos_ + n < pos_)
      throw SerializationError("truncated message");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ppds
