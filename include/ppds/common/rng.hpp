#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "ppds/common/error.hpp"

/// \file rng.hpp
/// Deterministic, high-quality pseudo-random number generation.
///
/// The library never uses global RNG state: every randomized component takes
/// a ppds::Rng&, which makes protocol runs reproducible in tests and benches
/// while allowing callers to seed from the OS for deployments.

namespace ppds {

/// SplitMix64 finalizer over a combined (seed, stream) input: adjacent
/// stream indices land in decorrelated 64-bit outputs. This is the single
/// definition behind every derived-stream determinism contract in the
/// library (core::chunk_seed for session pools, the OMPE per-point disguise
/// streams): results depend only on (seed, stream), never on thread count.
inline std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
///
/// Satisfies UniformRandomBitGenerator so it can drive <random>
/// distributions. Not cryptographically secure: the crypto module layers a
/// hash-based PRG on top for anything security-relevant (see
/// ppds/crypto/prg.hpp); Rng is for experiment workloads, cover positions in
/// tests, and synthetic data.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-seeds the generator, expanding \p seed with SplitMix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Fills \p out with uniform bytes, consuming one 64-bit draw per 8 bytes
  /// (a per-byte operator() loop would discard 7/8 of every draw).
  void fill_bytes(std::span<std::uint8_t> out) {
    std::size_t i = 0;
    for (; i + 8 <= out.size(); i += 8) {
      const std::uint64_t word = (*this)();
      std::memcpy(out.data() + i, &word, 8);
    }
    if (i < out.size()) {
      const std::uint64_t word = (*this)();
      std::memcpy(out.data() + i, &word, out.size() - i);
    }
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    const double u =
        static_cast<double>((*this)() >> 11) * 0x1.0p-53;  // [0,1)
    return lo + (hi - lo) * u;
  }

  /// Uniform double in [lo, hi) excluding values with |x| < eps.
  /// Used for random polynomial coefficients that must not vanish.
  double uniform_nonzero(double lo, double hi, double eps = 1e-3) {
    for (;;) {
      const double v = uniform(lo, hi);
      // Branchless magnitude test: a sign-dependent two-sided compare
      // mispredicts on half of all draws, which made this the hottest
      // instruction in the OMPE cover sweep (millions of draws per query).
      if (std::fabs(v) >= eps) return v;
    }
  }

  /// Log-uniform positive value in [2^lo_exp, 2^hi_exp]; used for the
  /// sign-preserving amplifier ra of the paper.
  double log_uniform_positive(double lo_exp = -4.0, double hi_exp = 4.0) {
    return std::exp2(uniform(lo_exp, hi_exp));
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) {
    detail::require(lo <= hi, "uniform_u64: empty range");
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + v % span;
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform(0.0, 1.0) < p; }

  /// Chooses \p count distinct indices from [0, n) in increasing order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t count) {
    detail::require(count <= n, "sample_indices: count > n");
    // Floyd's algorithm, then sort.
    std::vector<std::size_t> chosen;
    chosen.reserve(count);
    std::vector<bool> used(n, false);
    for (std::size_t j = n - count; j < n; ++j) {
      const std::size_t t = uniform_u64(0, j);
      if (used[t]) {
        chosen.push_back(j);
        used[j] = true;
      } else {
        chosen.push_back(t);
        used[t] = true;
      }
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[uniform_u64(0, i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace ppds
