#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Exception hierarchy for the ppds library.
///
/// All errors raised by ppds derive from ppds::Error so that callers can
/// catch library failures with a single handler while still being able to
/// distinguish protocol violations from plain usage errors.

namespace ppds {

/// Root of the ppds exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad dimension, empty input...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A two-party protocol received a malformed, truncated or out-of-order
/// message. In a deployment this is the error an honest party raises before
/// aborting the session.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// A cryptographic operation failed (bad group element, decryption integrity
/// failure, ...).
class CryptoError : public Error {
 public:
  explicit CryptoError(const std::string& what) : Error(what) {}
};

/// Deserialization of a wire message failed.
class SerializationError : public ProtocolError {
 public:
  explicit SerializationError(const std::string& what) : ProtocolError(what) {}
};

/// A blocking receive exceeded its deadline. The peer may be slow, wedged or
/// gone; the session must abort (and may be retried with fresh randomness).
class TimeoutError : public ProtocolError {
 public:
  explicit TimeoutError(const std::string& what) : ProtocolError(what) {}
};

/// A send would overflow the channel's configured queue-byte cap. Failing
/// the session beats buffering without bound against a stalled peer.
class BackpressureError : public ProtocolError {
 public:
  explicit BackpressureError(const std::string& what) : ProtocolError(what) {}
};

namespace detail {
/// Throws InvalidArgument with \p what when \p cond is false.
inline void require(bool cond, const char* what) {
  if (!cond) throw InvalidArgument(what);
}
}  // namespace detail

}  // namespace ppds
