#pragma once

#include <type_traits>
#include <utility>

#include "ppds/common/ct.hpp"

/// \file secret_taint.hpp
/// Source-level secrecy lattice for the semantic taint analyzer
/// (tools/lint/taint_analyzer.py).
///
/// The protocol proofs assume Bob learns only sign(d(t̃)) and Alice learns
/// nothing — an argument that dies the moment a secret value steers a
/// branch, indexes an array, feeds a variable-latency division, or reaches
/// a log line. The lexical hygiene linter catches *named* secrets at their
/// point of use; this header gives the taint analyzer the ground truth it
/// needs to follow secret VALUES through assignments, arithmetic, and call
/// summaries, wherever their names end up.
///
/// Three primitives:
///
///  * `PPDS_SECRET` — annotates a declaration (member, local, parameter) as
///    a taint ROOT. Under Clang it expands to
///    `[[clang::annotate("ppds::secret")]]` so AST tooling sees it; under
///    other compilers it expands to nothing. Zero code is generated either
///    way.
///
///  * `Secret<T>` — a value wrapper for secret scalars. The analyzer treats
///    every `Secret<...>` declaration as a root, so a secret that travels
///    through auto/templates keeps its taint without an annotation at every
///    hop. The wrapped value is reachable only through `value()` (still
///    tainted) or `PPDS_DECLASSIFY`. The destructor wipes the storage.
///
///  * `PPDS_DECLASSIFY(expr, why)` — the ONLY sanctioned secret→public
///    exit. Expands to `(expr)` (the justification string is discarded at
///    compile time, never evaluated). The analyzer stops taint at the macro
///    and records the site; every site must appear in the audit list in
///    docs/STATIC_ANALYSIS.md. Declassifying anywhere else is a finding.
///
/// All three are transcript-neutral: release builds emit byte-identical
/// protocol messages with and without them (determinism tests pin this).

// NOLINTBEGIN(cppcoreguidelines-macro-usage) -- attribute/marker macros
// cannot be functions: the analyzer keys on their spelling.
#if defined(__clang__)
#define PPDS_SECRET [[clang::annotate("ppds::secret")]]
#else
#define PPDS_SECRET
#endif

/// The one sanctioned secret→public exit. `why` must be a string literal
/// naming the masking/blinding argument that makes the reveal safe; it is
/// swallowed by the preprocessor, so there is no runtime cost.
#define PPDS_DECLASSIFY(expr, why) (expr)
// NOLINTEND(cppcoreguidelines-macro-usage)

namespace ppds {

/// Secret scalar wrapper: carries taint through type deduction, keeps the
/// value out of accidental conversions (no implicit operator T), and wipes
/// its storage on destruction. Intended for trivially-copyable scalars
/// (seeds, choice bits, amplifiers); buffers use PPDS_SECRET + ScopedWipe.
template <typename T>
  requires std::is_trivially_copyable_v<T>
class Secret {
 public:
  constexpr Secret() noexcept : value_{} {}
  constexpr explicit Secret(T value) noexcept : value_(std::move(value)) {}

  Secret(const Secret&) noexcept = default;
  Secret& operator=(const Secret&) noexcept = default;

  ~Secret() { secure_wipe_object(value_); }

  /// Tainted read access — the analyzer propagates taint through it.
  [[nodiscard]] constexpr const T& value() const noexcept { return value_; }

  /// Tainted write access.
  constexpr void set(T value) noexcept { value_ = std::move(value); }

  /// Arithmetic stays inside the lattice: combining secrets yields secrets.
  friend constexpr Secret operator+(Secret a, Secret b) noexcept {
    return Secret(static_cast<T>(a.value_ + b.value_));
  }
  friend constexpr Secret operator^(Secret a, Secret b) noexcept
    requires std::is_integral_v<T>
  {
    return Secret(static_cast<T>(a.value_ ^ b.value_));
  }

 private:
  T value_;
};

}  // namespace ppds
