#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

/// \file ct.hpp
/// Constant-time comparison and guaranteed memory wiping for key material.
///
/// Two leak classes these primitives close:
///
///  1. Early-exit comparisons (`std::memcmp`, `operator==` on byte vectors)
///     return as soon as the first differing byte is found, so the running
///     time reveals the length of the matching prefix — enough to recover a
///     MAC or pad key byte-by-byte over a network. `ct_equal` always touches
///     every byte and folds the differences with data-independent `|`.
///
///  2. Dead-store elimination: a plain `memset(key, 0, len)` before a buffer
///     goes out of scope is legally removed by the optimizer because the
///     memory is never read again, leaving key bytes in freed heap pages.
///     `secure_wipe` defeats this with a compiler barrier that declares the
///     wiped memory "used".
///
/// The crypto-hygiene linter (tools/lint/secret_hygiene.py) enforces that
/// secret-named buffers in src/crypto, src/ompe and src/core go through
/// these helpers instead of their leaky standard-library counterparts.

namespace ppds {

namespace detail {

/// Optimization barrier: tells the compiler the bytes at \p p have been
/// observed, so preceding stores to them cannot be elided. No code is
/// emitted on GCC/Clang.
inline void ct_barrier(const volatile void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "r"(p) : "memory");
#else
  // Fallback: a volatile read the compiler must honor.
  (void)*static_cast<const volatile unsigned char*>(p);
#endif
}

}  // namespace detail

/// Constant-time byte-wise equality. Runs in time dependent only on the
/// lengths (which are treated as public); never short-circuits on the first
/// mismatch. Unequal lengths compare unequal without touching the data.
[[nodiscard]] inline bool ct_equal(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  volatile std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = diff | static_cast<std::uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

/// Zeroes \p data in a way the optimizer cannot remove. Works for any
/// trivially-copyable element type (uint8_t pads, uint32_t hash state,
/// long double interpolation scratch, field elements, ...).
template <typename T, std::size_t Extent>
  requires std::is_trivially_copyable_v<T>
inline void secure_wipe(std::span<T, Extent> data) noexcept {
  // Accessing any object's storage through unsigned char* is sanctioned by
  // the aliasing rules; this is the one place the codebase does it.
  auto* bytes = reinterpret_cast<volatile unsigned char*>(data.data());  // NOLINT(cppcoreguidelines-pro-type-reinterpret-cast)
  const std::size_t n = data.size_bytes();
  for (std::size_t i = 0; i < n; ++i) bytes[i] = 0;
  if (n != 0) detail::ct_barrier(data.data());
}

/// Wipes a single trivially-copyable object (a Digest, a fixed array, a
/// POD struct holding key material).
template <typename T>
  requires std::is_trivially_copyable_v<T>
inline void secure_wipe_object(T& obj) noexcept {
  secure_wipe(std::span<T, 1>(&obj, 1));
}

/// RAII guard: secure_wipes a contiguous container of trivially-copyable
/// elements when the scope exits — including by EXCEPTION, which is the
/// case the explicit wipe calls on success paths miss. Protocol code parks
/// its secret scratch (masked evaluations, cover coefficients,
/// interpolation support) under one of these so an abort mid-round leaves
/// no secret bytes in freed heap pages.
template <typename Container>
class ScopedWipe {
 public:
  explicit ScopedWipe(Container& target) noexcept : target_(&target) {}

  ScopedWipe(const ScopedWipe&) = delete;
  ScopedWipe& operator=(const ScopedWipe&) = delete;

  ~ScopedWipe() { secure_wipe(std::span(*target_)); }

 private:
  Container* target_;
};

/// RAII guard for a container of byte buffers (std::vector<Bytes> and
/// friends): wipes every element on scope exit.
template <typename Container>
class ScopedWipeEach {
 public:
  explicit ScopedWipeEach(Container& target) noexcept : target_(&target) {}

  ScopedWipeEach(const ScopedWipeEach&) = delete;
  ScopedWipeEach& operator=(const ScopedWipeEach&) = delete;

  ~ScopedWipeEach() {
    for (auto& buffer : *target_) secure_wipe(std::span(buffer));
  }

 private:
  Container* target_;
};

}  // namespace ppds
