#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ppds/common/error.hpp"

/// \file hex.hpp
/// Hex encoding for test vectors and debugging output.

namespace ppds {

/// Lower-case hex encoding of a byte span.
inline std::string to_hex(std::span<const std::uint8_t> data) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

/// Parses lower- or upper-case hex; throws InvalidArgument on bad input.
inline std::vector<std::uint8_t> from_hex(const std::string& hex) {
  detail::require(hex.size() % 2 == 0, "from_hex: odd length");
  auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
    throw InvalidArgument("from_hex: bad digit");
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

}  // namespace ppds
