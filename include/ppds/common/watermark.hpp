#pragma once

#include <cstddef>
#include <deque>

#include "ppds/common/error.hpp"

/// \file watermark.hpp
/// Low-water-mark queue: the pool primitive behind the silent-OT pad
/// reservoir. A plain FIFO plus a threshold; consumers pop from the front,
/// a background producer appends to the back, and `below_low_water()` is
/// the refill trigger the producer polls. The queue itself is NOT
/// thread-safe — the owning engine serializes access under its own mutex
/// (crypto/silent_ot.cpp) so that level checks and pops are one critical
/// section, which is exactly the coherence bug available_slots() had before
/// the reservoir existed.

namespace ppds {

template <typename T>
class LowWaterQueue {
 public:
  LowWaterQueue() = default;
  explicit LowWaterQueue(std::size_t low_water) : low_water_(low_water) {}

  void set_low_water(std::size_t mark) { low_water_ = mark; }
  std::size_t low_water() const { return low_water_; }

  void push(T value) { items_.push_back(std::move(value)); }

  /// Pops the oldest element; throws if empty (the caller's ledger must
  /// guarantee coverage before consuming).
  T pop() {
    detail::require(!items_.empty(), "low-water queue: pop on empty");
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Refill trigger: the producer tops the queue back up whenever the
  /// level sinks under the mark.
  bool below_low_water() const { return items_.size() < low_water_; }

  /// Producer-side gap to the mark (how much to refill).
  std::size_t deficit() const {
    return items_.size() < low_water_ ? low_water_ - items_.size() : 0;
  }

  /// Direct element access for the owner's secure-wipe sweeps: the queue is
  /// a container of key material and the engine must be able to zero every
  /// element in place on abort.
  std::deque<T>& items() { return items_; }
  const std::deque<T>& items() const { return items_; }

  void clear() { items_.clear(); }

 private:
  std::deque<T> items_;
  std::size_t low_water_ = 0;
};

}  // namespace ppds
