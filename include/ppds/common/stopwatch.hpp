#pragma once

#include <chrono>

/// \file stopwatch.hpp
/// Monotonic wall-clock timing for the benchmark harness.

namespace ppds {

/// Simple monotonic stopwatch; started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ppds
