#pragma once

#include <cmath>
#include <cstdint>

#include "ppds/common/error.hpp"

/// \file fixed_point.hpp
/// Signed fixed-point codec used by the exact (finite-field) OMPE backend.
///
/// Real inputs in the paper live in [-1, 1]; we embed them as integers
/// round(x * 2^frac_bits). The field backend (ppds/field) then maps the
/// integers into F_p with negative values represented as p - |v|.

namespace ppds {

/// Fixed-point parameters. frac_bits is the binary scale of ONE factor; a
/// product of k encoded values carries scale k * frac_bits, which callers
/// must track (the OMPE field backend does this per polynomial degree).
struct FixedPoint {
  unsigned frac_bits = 20;

  std::int64_t scale() const { return std::int64_t{1} << frac_bits; }

  /// Encodes a real to the nearest fixed-point integer.
  std::int64_t encode(double x) const {
    const double scaled = x * static_cast<double>(scale());
    detail::require(std::abs(scaled) < 9.0e18, "fixed_point: overflow");
    return static_cast<std::int64_t>(std::llround(scaled));
  }

  /// Decodes an integer carrying \p factors accumulated scales.
  double decode(std::int64_t v, unsigned factors = 1) const {
    return static_cast<double>(v) /
           std::pow(2.0, static_cast<double>(frac_bits) * factors);
  }
};

}  // namespace ppds
