#pragma once

#include <cstdint>
#include <vector>

#include "ppds/common/error.hpp"

/// \file monomial.hpp
/// Monomial machinery for the nonlinear classification scheme (Section IV-B).
///
/// A degree-p polynomial kernel turns the decision function into a
/// polynomial over the n' = C(n+p-1, n-1) monomials of exact total degree p:
///     tau_j = prod_i t_i^{k_i},   k_1 + ... + k_n = p.
/// This header enumerates the exponent vectors in a canonical order
/// (reverse-lexicographic), computes multinomial coefficients, and applies
/// the "monomial transform" t -> tau that both Alice (to expand her decision
/// function) and Bob (to expand his sample) perform locally.

namespace ppds::math {

/// Exponent vector of one monomial: exps[i] is the power of t_i.
/// uint8_t keeps the materialized bases small — the a1a..a9a expansion has
/// 325k monomials over 123 variables, and kernel degrees never exceed 255.
using Exponents = std::vector<std::uint8_t>;

/// All exponent vectors over \p n variables with total degree exactly \p p,
/// in a deterministic canonical order shared by both protocol parties.
std::vector<Exponents> monomials_of_degree(std::size_t n, unsigned p);

/// Number of monomials of exact degree p over n variables: C(n+p-1, p).
/// Throws InvalidArgument if the count does not fit in 64 bits.
std::uint64_t monomial_count(std::size_t n, unsigned p);

/// Multinomial coefficient p! / (k_1! ... k_n!), where sum(k_i) == p.
double multinomial_coefficient(const Exponents& exps);

/// Evaluates every monomial at the point \p t (the transform t -> tau).
std::vector<double> monomial_transform(const std::vector<Exponents>& monomials,
                                       const std::vector<double>& t);

}  // namespace ppds::math
