#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ppds/common/error.hpp"

/// \file monomial.hpp
/// Monomial machinery for the nonlinear classification scheme (Section IV-B).
///
/// A degree-p polynomial kernel turns the decision function into a
/// polynomial over the n' = C(n+p-1, n-1) monomials of exact total degree p:
///     tau_j = prod_i t_i^{k_i},   k_1 + ... + k_n = p.
/// This header enumerates the exponent vectors in a canonical order
/// (reverse-lexicographic), computes multinomial coefficients, and applies
/// the "monomial transform" t -> tau that both Alice (to expand her decision
/// function) and Bob (to expand his sample) perform locally.

namespace ppds::math {

/// Exponent vector of one monomial: exps[i] is the power of t_i.
/// uint8_t keeps the materialized bases small — the a1a..a9a expansion has
/// 325k monomials over 123 variables, and kernel degrees never exceed 255.
using Exponents = std::vector<std::uint8_t>;

/// All exponent vectors over \p n variables with total degree exactly \p p,
/// in a deterministic canonical order shared by both protocol parties.
std::vector<Exponents> monomials_of_degree(std::size_t n, unsigned p);

/// Number of monomials of exact degree p over n variables: C(n+p-1, p).
/// Throws InvalidArgument if the count does not fit in 64 bits.
std::uint64_t monomial_count(std::size_t n, unsigned p);

/// Multinomial coefficient p! / (k_1! ... k_n!), where sum(k_i) == p.
double multinomial_coefficient(const Exponents& exps);

/// Evaluates every monomial at the point \p t (the transform t -> tau).
std::vector<double> monomial_transform(const std::vector<Exponents>& monomials,
                                       const std::vector<double>& t);

/// All monomials over \p n variables with total degree in [1, p], in GRADED
/// canonical order: ascending degree, each degree level in the
/// monomials_of_degree order. Both protocol parties derive the same list.
///
/// The graded order is what makes the basis cheap to evaluate: every
/// degree-d monomial is a degree-(d-1) monomial (which appears EARLIER in
/// the list) times one variable, so the whole basis evaluates in one field
/// multiplication per monomial (see MonomialDag) instead of a per-term
/// power walk.
std::vector<Exponents> monomials_up_to(std::size_t n, unsigned p);

/// Evaluation DAG over a monomial basis: node i's value is
/// value[parent[i]] * x[var[i]], with kOne standing for the constant-1 root
/// (degree-1 monomials multiply a variable into 1). Built once per basis
/// (e.g. per ClassificationProfile) and evaluated in size() multiplications
/// per point — the hot path of the nonlinear classification scheme.
///
/// The parent of a monomial is the monomial with its LAST nonzero exponent
/// decremented. That choice reproduces the factor order of the naive
/// ascending-variable product, so double-precision results are bit-identical
/// to monomial_transform (and field results are exact either way).
struct MonomialDag {
  static constexpr std::uint32_t kOne = 0xffffffffu;

  std::vector<std::uint32_t> parent;  ///< index of the divisor node, or kOne
  std::vector<std::uint32_t> var;     ///< variable multiplied onto the parent

  std::size_t size() const { return parent.size(); }
  bool empty() const { return parent.empty(); }

  /// Evaluates every monomial at \p x into \p out (both sized size()).
  /// Works over any ring with operator* (double, field::M61, ...).
  template <typename R>
  void evaluate(std::span<const R> x, std::span<R> out) const {
    detail::require(out.size() == parent.size(),
                    "MonomialDag: output size mismatch");
    for (std::size_t i = 0; i < parent.size(); ++i) {
      const R& xv = x[var[i]];
      out[i] = parent[i] == kOne ? xv : out[parent[i]] * xv;
    }
  }
};

/// Builds the evaluation DAG for \p monomials. Requirements (satisfied by
/// monomials_up_to): every monomial has total degree >= 1, and for each
/// monomial of degree >= 2 the parent (last nonzero exponent decremented)
/// appears earlier in the list. Throws InvalidArgument otherwise.
MonomialDag build_monomial_dag(const std::vector<Exponents>& monomials);

}  // namespace ppds::math
