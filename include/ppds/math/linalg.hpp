#pragma once

#include <vector>

#include "ppds/common/error.hpp"

/// \file linalg.hpp
/// Small dense linear algebra: just enough for the attack evaluations
/// (Fig. 5 least-squares model estimation, Fig. 6 exact reconstruction from
/// distances) and the boundary-point solver.

namespace ppds::math {

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Throws InvalidArgument if A is (numerically) singular.
std::vector<double> solve(Matrix a, std::vector<double> b);

/// Least-squares solution of A x ~= b via the normal equations
/// (A^T A) x = A^T b. Adequate for the low-dimensional attack fits.
std::vector<double> least_squares(const Matrix& a, const std::vector<double>& b);

}  // namespace ppds::math
