#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "ppds/common/error.hpp"
#include "ppds/common/rng.hpp"

/// \file poly.hpp
/// Univariate polynomials over an arbitrary coefficient ring.
///
/// Two instantiations matter in ppds:
///  * Poly<double> / Poly<long double> — the paper-faithful real backend
///    (masking polynomial h(u), cover polynomials g_i(v)).
///  * Poly<field::M61> — the exact fixed-point backend over F_{2^61-1}.

namespace ppds::math {

/// Dense univariate polynomial c[0] + c[1] x + ... + c[d] x^d.
template <typename T>
class Poly {
 public:
  Poly() = default;

  /// Coefficients in ascending-degree order.
  explicit Poly(std::vector<T> coeffs) : c_(std::move(coeffs)) {}

  /// Number of stored coefficients minus one (no trailing-zero trimming:
  /// masking polynomials keep their nominal degree even if a random leading
  /// coefficient happens to be zero).
  std::size_t degree() const { return c_.empty() ? 0 : c_.size() - 1; }

  bool empty() const { return c_.empty(); }

  const std::vector<T>& coeffs() const { return c_; }
  std::vector<T>& coeffs() { return c_; }

  /// Horner evaluation.
  T operator()(const T& x) const {
    if (c_.empty()) return T{};
    T acc = c_.back();
    for (std::size_t i = c_.size() - 1; i-- > 0;) {
      acc = acc * x + c_[i];
    }
    return acc;
  }

  T constant_term() const { return c_.empty() ? T{} : c_.front(); }

  Poly operator+(const Poly& other) const {
    std::vector<T> out(std::max(c_.size(), other.c_.size()), T{});
    for (std::size_t i = 0; i < c_.size(); ++i) out[i] = out[i] + c_[i];
    for (std::size_t i = 0; i < other.c_.size(); ++i) out[i] = out[i] + other.c_[i];
    return Poly(std::move(out));
  }

  Poly operator*(const T& s) const {
    std::vector<T> out = c_;
    for (T& v : out) v = v * s;
    return Poly(std::move(out));
  }

 private:
  std::vector<T> c_;
};

/// Random real polynomial of exact nominal degree \p degree with constant
/// term \p constant: used both for the sender's masking polynomial h
/// (constant 0) and the receiver's covers g_i (constant t̃_i). Coefficients
/// are uniform in [-bound, bound] and bounded away from zero so the
/// polynomial genuinely has the nominal degree.
template <typename T>
Poly<T> random_poly(Rng& rng, std::size_t degree, T constant, double bound = 1.0) {
  std::vector<T> c(degree + 1);
  c[0] = constant;
  for (std::size_t i = 1; i <= degree; ++i) {
    c[i] = static_cast<T>(rng.uniform_nonzero(-bound, bound));
  }
  return Poly<T>(std::move(c));
}

}  // namespace ppds::math
