#pragma once

#include <vector>

#include "ppds/common/error.hpp"
#include "ppds/math/monomial.hpp"

/// \file multipoly.hpp
/// Sparse multivariate polynomials — the object the OMPE sender holds.
///
/// In the paper the sender's secret is always a multivariate polynomial P:
///   * linear classification:   P(t) = ra * (w . t + b), degree 1 over n vars
///   * nonlinear classification: P(tau) over n' monomial variates, degree 1
///     in tau (the monomial transform absorbs the kernel degree)
///   * similarity stage 1:      P(t) = ram * (mA . t)           (degree 1)
///   * similarity stage 2:      Eq. (7), degree 4 over 2 vars.

namespace ppds::math {

/// One term: coeff * prod_i x_i^{exps[i]}.
struct Term {
  double coeff = 0.0;
  Exponents exps;
};

/// Sparse multivariate polynomial over doubles.
class MultiPoly {
 public:
  MultiPoly() = default;

  /// \p arity — number of variables; every term must carry that many exponents.
  explicit MultiPoly(std::size_t arity) : arity_(arity) {}

  /// Convenience: builds the affine polynomial w . x + b.
  static MultiPoly affine(const std::vector<double>& w, double b);

  void add_term(double coeff, Exponents exps);

  /// Adds \p delta to the constant term.
  void add_constant(double delta);

  /// Multiplies every coefficient by \p s (the paper's amplification step).
  void scale(double s);

  double evaluate(const std::vector<double>& x) const;

  /// Largest total degree across terms.
  unsigned total_degree() const;

  /// Merges like terms and drops (near-)zero coefficients.
  void compact(double drop_below = 0.0);

  /// Product of two polynomials over the same variables, discarding any
  /// resulting term of total degree > max_degree (used by the Taylor
  /// truncation of the RBF/sigmoid kernels).
  static MultiPoly mul(const MultiPoly& a, const MultiPoly& b,
                       unsigned max_degree);

  /// a^e with the same truncation rule.
  static MultiPoly pow(const MultiPoly& a, unsigned e, unsigned max_degree);

  MultiPoly operator+(const MultiPoly& other) const;

  std::size_t arity() const { return arity_; }
  const std::vector<Term>& terms() const { return terms_; }

 private:
  std::size_t arity_ = 0;
  std::vector<Term> terms_;
};

}  // namespace ppds::math
