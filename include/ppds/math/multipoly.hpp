#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ppds/common/error.hpp"
#include "ppds/math/monomial.hpp"

/// \file multipoly.hpp
/// Sparse multivariate polynomials — the object the OMPE sender holds.
///
/// In the paper the sender's secret is always a multivariate polynomial P:
///   * linear classification:   P(t) = ra * (w . t + b), degree 1 over n vars
///   * nonlinear classification: P(tau) over n' monomial variates, degree 1
///     in tau (the monomial transform absorbs the kernel degree)
///   * similarity stage 1:      P(t) = ram * (mA . t)           (degree 1)
///   * similarity stage 2:      Eq. (7), degree 4 over 2 vars.

namespace ppds::math {

/// One term: coeff * prod_i x_i^{exps[i]}.
struct Term {
  double coeff = 0.0;
  Exponents exps;
};

/// Sparse multivariate polynomial over doubles.
class MultiPoly {
 public:
  MultiPoly() = default;

  /// \p arity — number of variables; every term must carry that many exponents.
  explicit MultiPoly(std::size_t arity) : arity_(arity) {}

  /// Convenience: builds the affine polynomial w . x + b.
  static MultiPoly affine(const std::vector<double>& w, double b);

  void add_term(double coeff, Exponents exps);

  /// Adds \p delta to the constant term.
  void add_constant(double delta);

  /// Multiplies every coefficient by \p s (the paper's amplification step).
  void scale(double s);

  double evaluate(const std::vector<double>& x) const;

  /// Largest total degree across terms.
  unsigned total_degree() const;

  /// Merges like terms and drops (near-)zero coefficients.
  void compact(double drop_below = 0.0);

  /// Product of two polynomials over the same variables, discarding any
  /// resulting term of total degree > max_degree (used by the Taylor
  /// truncation of the RBF/sigmoid kernels).
  static MultiPoly mul(const MultiPoly& a, const MultiPoly& b,
                       unsigned max_degree);

  /// a^e with the same truncation rule.
  static MultiPoly pow(const MultiPoly& a, unsigned e, unsigned max_degree);

  MultiPoly operator+(const MultiPoly& other) const;

  std::size_t arity() const { return arity_; }
  const std::vector<Term>& terms() const { return terms_; }

 private:
  std::size_t arity_ = 0;
  std::vector<Term> terms_;
};

/// Compiled evaluation form of a MultiPoly: flat SoA storage (coefficient
/// array + CSR exponent lists) plus a monomial evaluation DAG over the
/// divisor closure of the term monomials. Where MultiPoly::evaluate walks
/// every term's exponent vector with repeated multiplications (quadratic in
/// total degree for nonlinear profiles), the compiled form evaluates in one
/// multiplication per DAG node plus one multiply-add per term — and its
/// inner loop carries no nested vectors, so it vectorizes.
///
/// Compile once per secret polynomial; evaluate at many points (the OMPE
/// sender evaluates every one of the receiver's M disguised points). The
/// per-term coefficient array can be swapped at evaluation time
/// (evaluate_with), which is how the exact field backend supplies its
/// scale-harmonized M61 encodings and how amplified copies evaluate without
/// recompiling.
class CompiledMultiPoly {
 public:
  /// Sentinel node index standing for the constant 1 (constant terms, and
  /// the parent of degree-1 monomials).
  static constexpr std::uint32_t kOne = MonomialDag::kOne;

  CompiledMultiPoly() = default;

  /// Compiles \p poly. Term order (and hence coefficient order) matches
  /// poly.terms() exactly, so externally encoded coefficient arrays stay
  /// aligned.
  explicit CompiledMultiPoly(const MultiPoly& poly);

  std::size_t arity() const { return arity_; }
  std::size_t term_count() const { return coeffs_.size(); }
  std::size_t node_count() const { return dag_.size(); }

  /// Per-term coefficients in source order.
  const std::vector<double>& coeffs() const { return coeffs_; }

  /// DAG node index per term (kOne for the constant term), source order —
  /// the flat view behind evaluate_with's term walk, for callers fusing
  /// their own lane kernels over the compiled program.
  const std::vector<std::uint32_t>& term_nodes() const { return term_node_; }

  /// The compiled monomial DAG in graded order.
  const MonomialDag& dag() const { return dag_; }

  /// CSR view of term \p t's exponents: parallel (variable, exponent) runs.
  std::span<const std::uint32_t> term_vars(std::size_t t) const {
    return std::span<const std::uint32_t>(csr_var_)
        .subspan(csr_offsets_[t], csr_offsets_[t + 1] - csr_offsets_[t]);
  }
  std::span<const std::uint8_t> term_exps(std::size_t t) const {
    return std::span<const std::uint8_t>(csr_exp_)
        .subspan(csr_offsets_[t], csr_offsets_[t + 1] - csr_offsets_[t]);
  }

  /// Evaluates with the compiled double coefficients. \p scratch holds the
  /// node values (resized to node_count()); pass a per-thread instance when
  /// evaluating concurrently.
  double evaluate(std::span<const double> x, std::vector<double>& scratch) const {
    return evaluate_with(std::span<const double>(coeffs_), x, scratch);
  }

  /// Evaluates with an externally supplied coefficient array (one entry per
  /// source term, same order as coeffs()) over any ring R with +, * and a
  /// zero-initializing default constructor — double for the real OMPE
  /// backend, field::M61 for the exact backend.
  template <typename R>
  R evaluate_with(std::span<const R> coeffs, std::span<const R> x,
                  std::vector<R>& scratch) const {
    detail::require(coeffs.size() == coeffs_.size(),
                    "CompiledMultiPoly: coefficient count mismatch");
    detail::require(x.size() == arity_, "CompiledMultiPoly: arity mismatch");
    scratch.resize(dag_.size());
    dag_.evaluate(x, std::span<R>(scratch));
    R acc{};
    for (std::size_t t = 0; t < coeffs.size(); ++t) {
      const std::uint32_t node = term_node_[t];
      acc = acc + (node == kOne ? coeffs[t] : coeffs[t] * scratch[node]);
    }
    return acc;
  }

  /// Lane-parallel evaluate_with: \p x holds one packed lane per variable
  /// (lane l of every entry is point l), coefficients stay scalar and are
  /// broadcast at use. L must provide broadcast(R), operator+ and operator*
  /// whose lanes match the scalar ops bit for bit (field::M61x8 does), so
  /// lane l of the result equals evaluate_with at point l exactly — the
  /// term walk is the same multiply-add chain, eight points per step.
  template <typename R, typename L>
  L evaluate_lanes(std::span<const R> coeffs, std::span<const L> x,
                   std::vector<L>& scratch) const {
    detail::require(coeffs.size() == coeffs_.size(),
                    "CompiledMultiPoly: coefficient count mismatch");
    detail::require(x.size() == arity_, "CompiledMultiPoly: arity mismatch");
    scratch.resize(dag_.size());
    dag_.evaluate(x, std::span<L>(scratch));
    L acc{};
    for (std::size_t t = 0; t < coeffs.size(); ++t) {
      const std::uint32_t node = term_node_[t];
      const L c = L::broadcast(coeffs[t]);
      acc = acc + (node == kOne ? c : c * scratch[node]);
    }
    return acc;
  }

 private:
  std::size_t arity_ = 0;
  std::vector<double> coeffs_;           ///< per term, source order
  std::vector<std::uint32_t> term_node_; ///< DAG node per term (kOne = const)
  /// CSR exponents: term t's nonzero exponents live in
  /// csr_var_/csr_exp_[csr_offsets_[t] .. csr_offsets_[t+1]).
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<std::uint32_t> csr_var_;
  std::vector<std::uint8_t> csr_exp_;
  /// Nodes of the divisor closure in graded order.
  MonomialDag dag_;
};

}  // namespace ppds::math
