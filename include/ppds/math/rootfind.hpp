#pragma once

#include <functional>
#include <optional>

/// \file rootfind.hpp
/// 1-D root finding on an interval; used by the nonlinear similarity scheme
/// to locate boundary points of a kernel decision surface along the edges of
/// the bounded data space (the nonlinear analogue of Eq. 5).

namespace ppds::math {

/// Finds a root of \p f in [lo, hi] by bisection, provided f(lo) and f(hi)
/// have opposite signs. Returns nullopt when there is no sign change (the
/// decision surface does not cross this edge).
std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, double tol = 1e-10,
                             int max_iter = 200);

}  // namespace ppds::math
