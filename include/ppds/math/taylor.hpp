#pragma once

#include <cstddef>
#include <vector>

/// \file taylor.hpp
/// Taylor-series coefficients used to polynomialize the RBF and sigmoid
/// kernels (Section IV-B of the paper). The paper truncates the infinite
/// series at "a large number p"; we expose the truncation order so the
/// approximation error can be studied (ablation bench).

namespace ppds::math {

/// Coefficients of exp(x) ~= sum_{i<=order} x^i / i!.
std::vector<double> exp_taylor(std::size_t order);

/// Coefficients of tanh(x) around 0 up to x^order (odd powers only; even
/// entries are 0). Uses the Bernoulli-number expansion the paper cites:
/// tanh(x) = sum B_{2i} 4^i (4^i - 1) / (2i)! x^{2i-1}. Valid for |x| < pi/2.
std::vector<double> tanh_taylor(std::size_t order);

/// Evaluates a Taylor polynomial (ascending coefficients) at x.
double eval_taylor(const std::vector<double>& coeffs, double x);

}  // namespace ppds::math
