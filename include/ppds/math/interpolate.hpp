#pragma once

#include <span>
#include <vector>

#include "ppds/common/error.hpp"

/// \file interpolate.hpp
/// Lagrange interpolation — the receiver's final OMPE step (Eq. 3 of the
/// paper). The receiver holds m = deg+1 pairs (v_j, B(v_j)) and needs B(0).
///
/// Two flavours:
///  * lagrange_at_zero: evaluates the interpolating polynomial at x = 0
///    directly (numerically the stable choice; the protocol only ever needs
///    B(0)).
///  * lagrange_coefficients: reconstructs the full coefficient vector via
///    Newton divided differences (used by tests to check that the masked
///    coefficients really look random).
///
/// Both are templated so the exact field backend reuses them verbatim
/// (division is multiplication by the modular inverse there).

namespace ppds::math {

/// Value at 0 of the unique degree-(n-1) interpolating polynomial through
/// the given nodes. Nodes must be pairwise distinct.
template <typename T>
T lagrange_at_zero(std::span<const T> xs, std::span<const T> ys) {
  detail::require(xs.size() == ys.size() && !xs.empty(),
                  "lagrange_at_zero: bad inputs");
  T acc{};
  for (std::size_t j = 0; j < xs.size(); ++j) {
    T num = ys[j];
    T den{};
    den = den + T{1};  // works for both doubles and field elements
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i == j) continue;
      num = num * (T{} - xs[i]);
      den = den * (xs[j] - xs[i]);
    }
    acc = acc + num / den;
  }
  return acc;
}

/// Full coefficient vector (ascending degree) of the interpolating
/// polynomial, via Newton's divided differences expanded to the monomial
/// basis.
template <typename T>
std::vector<T> lagrange_coefficients(std::span<const T> xs,
                                     std::span<const T> ys) {
  detail::require(xs.size() == ys.size() && !xs.empty(),
                  "lagrange_coefficients: bad inputs");
  const std::size_t n = xs.size();
  // Divided-difference table (in place).
  std::vector<T> dd(ys.begin(), ys.end());
  for (std::size_t level = 1; level < n; ++level) {
    for (std::size_t i = n - 1; i >= level; --i) {
      dd[i] = (dd[i] - dd[i - 1]) / (xs[i] - xs[i - level]);
      if (i == level) break;
    }
  }
  // Expand Newton form to monomial coefficients.
  std::vector<T> coeffs(n, T{});
  std::vector<T> basis(n, T{});  // coefficients of prod_{k<i}(x - x_k)
  basis[0] = T{1};
  std::size_t basis_len = 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < basis_len; ++k)
      coeffs[k] = coeffs[k] + dd[i] * basis[k];
    if (i + 1 < n) {
      // basis *= (x - xs[i])
      for (std::size_t k = basis_len; k-- > 0;) {
        basis[k + 1] = basis[k + 1] + basis[k];
        basis[k] = basis[k] * (T{} - xs[i]);
      }
      ++basis_len;
    }
  }
  return coeffs;
}

}  // namespace ppds::math
