#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "ppds/common/error.hpp"

/// \file vec.hpp
/// Dense real vector helpers used across the SVM substrate and the
/// similarity-evaluation geometry (centroids, cosine similarity).

namespace ppds::math {

using Vec = std::vector<double>;

/// Dot product; both spans must have equal length.
inline double dot(std::span<const double> a, std::span<const double> b) {
  detail::require(a.size() == b.size(), "dot: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

/// Squared Euclidean norm.
inline double norm2(std::span<const double> a) { return dot(a, a); }

/// Euclidean norm.
inline double norm(std::span<const double> a) { return std::sqrt(norm2(a)); }

/// Squared Euclidean distance between two points.
inline double dist2(std::span<const double> a, std::span<const double> b) {
  detail::require(a.size() == b.size(), "dist2: dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  detail::require(x.size() == y.size(), "axpy: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha
inline void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

/// Cosine of the angle between two nonzero vectors, clamped to [-1, 1].
inline double cosine_similarity(std::span<const double> a,
                                std::span<const double> b) {
  const double na = norm2(a), nb = norm2(b);
  detail::require(na > 0.0 && nb > 0.0, "cosine_similarity: zero vector");
  const double c = dot(a, b) / std::sqrt(na * nb);
  return std::fmin(1.0, std::fmax(-1.0, c));
}

/// Component-wise mean of a set of points (all the same dimension).
inline Vec mean_point(std::span<const Vec> points) {
  detail::require(!points.empty(), "mean_point: empty set");
  Vec m(points.front().size(), 0.0);
  for (const Vec& p : points) {
    detail::require(p.size() == m.size(), "mean_point: dimension mismatch");
    for (std::size_t i = 0; i < m.size(); ++i) m[i] += p[i];
  }
  for (double& v : m) v /= static_cast<double>(points.size());
  return m;
}

}  // namespace ppds::math
