#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ppds/crypto/group.hpp"
#include "ppds/crypto/ot.hpp"
#include "ppds/ompe/ompe.hpp"

/// \file config.hpp
/// Shared configuration of the two privacy-preserving schemes: which OMPE
/// backend, which OT engine, which security parameters. Both parties agree
/// on a SchemeConfig out of band (it contains only public parameters).

namespace ppds::core {

/// Which OT instantiation carries the k-out-of-M transfer.
enum class OtEngine {
  kNaorPinkas,   ///< real public-key OT (DhGroup modexp)
  kPrecomputed,  ///< Naor-Pinkas moved offline; online transfers are
                 ///< hash+XOR only (the paper's precomputation remark)
  kLoopback,     ///< trusted simulation, benchmark-only (no privacy!)
};

struct SchemeConfig {
  ompe::OmpeParams ompe;
  OtEngine ot_engine = OtEngine::kNaorPinkas;
  crypto::GroupId group = crypto::GroupId::kModp1536;
  /// Fixed-base window-table acceleration for group exponentiations. A pure
  /// local optimization: it never changes wire bytes, so the parties need
  /// not agree on it (it is excluded from the protocol digest). Off is only
  /// useful for baseline benchmarks and equivalence tests.
  bool fixed_base_tables = true;

  /// Convenience presets.
  static SchemeConfig secure_default() { return SchemeConfig{}; }

  /// Fast preset for throughput experiments: loopback OT, smaller q/k.
  static SchemeConfig fast_simulation() {
    SchemeConfig cfg;
    cfg.ot_engine = OtEngine::kLoopback;
    cfg.ompe.q = 4;
    cfg.ompe.k = 2;
    return cfg;
  }
};

/// One homogeneous block of precomputed-OT demand: \p count direct
/// 1-of-\p arity slots (arity 2 doubles as the bit-decomposition slot
/// type). See ot_demand_per_query().
struct OtDemand {
  std::size_t arity = 2;
  std::size_t count = 0;
};

/// Per-party OT engine bundle. Naor-Pinkas-based engines run over the
/// process-wide shared_group() so the fixed-base generator table is built
/// once and stays warm across sessions (unless cfg.fixed_base_tables is
/// false, in which case a private unaccelerated group is created).
///
/// For OtEngine::kPrecomputed the engines are ready immediately and refill
/// their slot pools on demand; calling prepare_sender() on the sender side
/// while the receiver concurrently calls prepare_receiver() (same demand,
/// see ot_demand_per_query()) front-loads a whole session's offline phase
/// into one batched round trip per distinct slot arity.
class OtBundle {
 public:
  OtBundle(const SchemeConfig& cfg, Rng& rng);

  /// Offline phase (no-op unless engine == kPrecomputed). The std::size_t
  /// forms reserve legacy arity-2 (bit-decomposition) slots.
  void prepare_sender(net::Endpoint& channel, std::size_t slots);
  void prepare_receiver(net::Endpoint& channel, std::size_t slots);

  /// Demand-list forms: reserve every (arity, count) block, merging
  /// duplicate arities, with \p repeat scaling a per-query demand to a
  /// whole batch. Both sides must pass the same demands in the same order.
  void prepare_sender(net::Endpoint& channel,
                      std::span<const OtDemand> demands,
                      std::size_t repeat = 1);
  void prepare_receiver(net::Endpoint& channel,
                        std::span<const OtDemand> demands,
                        std::size_t repeat = 1);

  /// Fails the bundle closed after a mid-protocol error: wipes and poisons
  /// any precomputed OT slot pools (see BatchedOtSender::abort — a half-
  /// consumed batch must never be resumed). Safe to call for every engine;
  /// the stateless engines have nothing to discard.
  void abort() noexcept;

  crypto::OtSender& sender();
  crypto::OtReceiver& receiver();

 private:
  SchemeConfig cfg_;
  Rng* rng_ = nullptr;
  /// Only set when fixed_base_tables is off (shared_group otherwise).
  std::unique_ptr<crypto::DhGroup> owned_group_;
  std::unique_ptr<crypto::OtSender> sender_;
  std::unique_ptr<crypto::OtReceiver> receiver_;
  /// Non-owning views into sender_/receiver_ when engine == kPrecomputed.
  crypto::BatchedOtSender* batched_sender_ = nullptr;
  crypto::BatchedOtReceiver* batched_receiver_ = nullptr;
};

/// Arity-2 (bit-decomposition) slots one OMPE evaluation would consume: the
/// m-out-of-M transfer runs m 1-out-of-M rounds of ceil(log2 M) slot-backed
/// key transfers each. This is the legacy sizing formula; the batched
/// engines serve M <= crypto::kMaxDirectArity transfers from direct 1-of-M
/// slots instead (see ot_demand_per_query()).
std::size_t ot_slots_per_query(const ompe::OmpeParams& params,
                               unsigned degree);

/// Demand one OMPE evaluation places on the precomputed-OT pools: m direct
/// 1-of-M slots when M fits the direct bound (one offline exponentiation
/// per transfer), else the bit-decomposition fallback of ot_slots_per_query
/// arity-2 slots.
std::vector<OtDemand> ot_demand_per_query(const ompe::OmpeParams& params,
                                          unsigned degree);

}  // namespace ppds::core
