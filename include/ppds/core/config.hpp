#pragma once

#include <memory>
#include <optional>

#include "ppds/crypto/group.hpp"
#include "ppds/crypto/ot.hpp"
#include "ppds/ompe/ompe.hpp"

/// \file config.hpp
/// Shared configuration of the two privacy-preserving schemes: which OMPE
/// backend, which OT engine, which security parameters. Both parties agree
/// on a SchemeConfig out of band (it contains only public parameters).

namespace ppds::core {

/// Which OT instantiation carries the k-out-of-M transfer.
enum class OtEngine {
  kNaorPinkas,   ///< real public-key OT (DhGroup modexp)
  kPrecomputed,  ///< Naor-Pinkas moved offline; online transfers are
                 ///< hash+XOR only (the paper's precomputation remark)
  kLoopback,     ///< trusted simulation, benchmark-only (no privacy!)
};

struct SchemeConfig {
  ompe::OmpeParams ompe;
  OtEngine ot_engine = OtEngine::kNaorPinkas;
  crypto::GroupId group = crypto::GroupId::kModp1536;

  /// Convenience presets.
  static SchemeConfig secure_default() { return SchemeConfig{}; }

  /// Fast preset for throughput experiments: loopback OT, smaller q/k.
  static SchemeConfig fast_simulation() {
    SchemeConfig cfg;
    cfg.ot_engine = OtEngine::kLoopback;
    cfg.ompe.q = 4;
    cfg.ompe.k = 2;
    return cfg;
  }
};

/// Per-party OT engine bundle. The DhGroup is created lazily only for the
/// Naor-Pinkas-based engines (it is the expensive part).
///
/// For OtEngine::kPrecomputed the caller must run the offline phase over
/// the protocol channel before the first transfer: the SENDER side calls
/// prepare_sender() while the receiver side concurrently calls
/// prepare_receiver(), both with the same slot count (use
/// SchemeConfig + ompe parameters to size it; see ot_slots_per_query()).
class OtBundle {
 public:
  OtBundle(const SchemeConfig& cfg, Rng& rng);

  /// Offline phase (no-op unless engine == kPrecomputed).
  void prepare_sender(net::Endpoint& channel, std::size_t slots);
  void prepare_receiver(net::Endpoint& channel, std::size_t slots);

  crypto::OtSender& sender();
  crypto::OtReceiver& receiver();

 private:
  SchemeConfig cfg_;
  Rng* rng_ = nullptr;
  std::unique_ptr<crypto::DhGroup> group_;
  std::unique_ptr<crypto::OtSender> sender_;
  std::unique_ptr<crypto::OtReceiver> receiver_;
  std::unique_ptr<crypto::NaorPinkasSender> base_sender_;
  std::unique_ptr<crypto::NaorPinkasReceiver> base_receiver_;
};

/// Precomputed-OT slots one OMPE evaluation consumes: the m-out-of-M
/// transfer runs m 1-out-of-M rounds of ceil(log2 M) slot-backed key
/// transfers each.
std::size_t ot_slots_per_query(const ompe::OmpeParams& params,
                               unsigned degree);

}  // namespace ppds::core
