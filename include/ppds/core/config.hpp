#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ppds/crypto/group.hpp"
#include "ppds/crypto/ot.hpp"
#include "ppds/ompe/ompe.hpp"

/// \file config.hpp
/// Shared configuration of the two privacy-preserving schemes: which OMPE
/// backend, which OT engine, which security parameters. Both parties agree
/// on a SchemeConfig out of band (it contains only public parameters).

namespace ppds::core {

/// Which OT instantiation carries the k-out-of-M transfer.
enum class OtEngine {
  kNaorPinkas,   ///< real public-key OT (DhGroup modexp)
  kPrecomputed,  ///< Naor-Pinkas moved offline; online transfers are
                 ///< hash+XOR only (the paper's precomputation remark)
  kLoopback,     ///< trusted simulation, benchmark-only (no privacy!)
};

struct SchemeConfig {
  ompe::OmpeParams ompe;
  OtEngine ot_engine = OtEngine::kNaorPinkas;
  crypto::GroupId group = crypto::GroupId::kModp1536;
  /// Fixed-base window-table acceleration for group exponentiations. A pure
  /// local optimization: it never changes wire bytes, so the parties need
  /// not agree on it (it is excluded from the protocol digest). Off is only
  /// useful for baseline benchmarks and equivalence tests.
  bool fixed_base_tables = true;

  /// Silent-OT offline phase for OtEngine::kPrecomputed: one PPRF seed
  /// agreement replaces the per-batch DH exponentiations, and slot refills
  /// become 16-byte correction rows instead of group elements. CHANGES the
  /// wire format, so both parties must agree — it is hashed into the
  /// protocol digest (core/session.hpp).
  bool silent_precompute = false;

  /// Background pad-refill service (crypto/reservoir.hpp): expand silent-OT
  /// pads off the protocol thread. Purely local scheduling — never touches
  /// the wire (transcripts are bit-identical either way), so it is EXCLUDED
  /// from the protocol digest, like fixed_base_tables.
  bool reservoir = false;

  /// Batch size for non-silent precomputed-OT pool top-ups. Affects how
  /// many slots an offline round trip fills (both sides must match for the
  /// non-silent engine — reserve() fails closed on disagreement) but not
  /// the protocol identity, so it is digest-excluded. Silent staging sizes
  /// come from protocol constants (crypto::kSilentStageQuantum), making
  /// this knob wire-irrelevant there.
  std::size_t refill_batch = 128;

  /// Low-water mark the reservoir refills silent pad pools against.
  /// Local-only, digest-excluded.
  std::size_t ot_low_water = 16;

  /// Convenience presets.
  static SchemeConfig secure_default() { return SchemeConfig{}; }

  /// Fast preset for throughput experiments: loopback OT, smaller q/k.
  static SchemeConfig fast_simulation() {
    SchemeConfig cfg;
    cfg.ot_engine = OtEngine::kLoopback;
    cfg.ompe.q = 4;
    cfg.ompe.k = 2;
    return cfg;
  }

  /// Silent-precompute preset: fast_simulation's OMPE shape with the
  /// precomputed engine running the PPRF offline phase.
  static SchemeConfig silent() {
    SchemeConfig cfg = fast_simulation();
    cfg.ot_engine = OtEngine::kPrecomputed;
    cfg.silent_precompute = true;
    return cfg;
  }
};

/// One homogeneous block of precomputed-OT demand: \p count direct
/// 1-of-\p arity slots (arity 2 doubles as the bit-decomposition slot
/// type). See ot_demand_per_query().
struct OtDemand {
  std::size_t arity = 2;
  std::size_t count = 0;
};

/// Per-party OT engine bundle. Naor-Pinkas-based engines run over the
/// process-wide shared_group() so the fixed-base generator table is built
/// once and stays warm across sessions (unless cfg.fixed_base_tables is
/// false, in which case a private unaccelerated group is created).
///
/// For OtEngine::kPrecomputed the engines are ready immediately and refill
/// their slot pools on demand; calling prepare_sender() on the sender side
/// while the receiver concurrently calls prepare_receiver() (same demand,
/// see ot_demand_per_query()) front-loads a whole session's offline phase
/// into one batched round trip per distinct slot arity.
class OtBundle {
 public:
  OtBundle(const SchemeConfig& cfg, Rng& rng);

  /// Offline phase (no-op unless engine == kPrecomputed). The std::size_t
  /// forms reserve legacy arity-2 (bit-decomposition) slots.
  void prepare_sender(net::Endpoint& channel, std::size_t slots);
  void prepare_receiver(net::Endpoint& channel, std::size_t slots);

  /// Demand-list forms: reserve every (arity, count) block, merging
  /// duplicate arities, with \p repeat scaling a per-query demand to a
  /// whole batch. Both sides must pass the same demands in the same order.
  void prepare_sender(net::Endpoint& channel,
                      std::span<const OtDemand> demands,
                      std::size_t repeat = 1);
  void prepare_receiver(net::Endpoint& channel,
                        std::span<const OtDemand> demands,
                        std::size_t repeat = 1);

  /// Fails the bundle closed after a mid-protocol error: wipes and poisons
  /// any precomputed OT slot pools (see BatchedOtSender::abort — a half-
  /// consumed batch must never be resumed). Safe to call for every engine;
  /// the stateless engines have nothing to discard.
  void abort() noexcept;

  /// Hooks both silent engines (if cfg.silent_precompute) to a background
  /// refill reservoir. The destructor detaches; no-op otherwise.
  void attach_reservoir(crypto::PadReservoir& reservoir);

  crypto::OtSender& sender();
  crypto::OtReceiver& receiver();

  /// Batched-engine views (nullptr unless engine == kPrecomputed): the
  /// audit/observability hooks live on the concrete types.
  crypto::BatchedOtSender* batched_sender() { return batched_sender_; }
  crypto::BatchedOtReceiver* batched_receiver() { return batched_receiver_; }

 private:
  SchemeConfig cfg_;
  Rng* rng_ = nullptr;
  /// Only set when fixed_base_tables is off (shared_group otherwise).
  std::unique_ptr<crypto::DhGroup> owned_group_;
  std::unique_ptr<crypto::OtSender> sender_;
  std::unique_ptr<crypto::OtReceiver> receiver_;
  /// Non-owning views into sender_/receiver_ when engine == kPrecomputed.
  crypto::BatchedOtSender* batched_sender_ = nullptr;
  crypto::BatchedOtReceiver* batched_receiver_ = nullptr;
};

/// Arity-2 (bit-decomposition) slots one OMPE evaluation would consume: the
/// m-out-of-M transfer runs m 1-out-of-M rounds of ceil(log2 M) slot-backed
/// key transfers each. This is the legacy sizing formula; the batched
/// engines serve M <= crypto::kMaxDirectArity transfers from direct 1-of-M
/// slots instead (see ot_demand_per_query()).
std::size_t ot_slots_per_query(const ompe::OmpeParams& params,
                               unsigned degree);

/// Demand one OMPE evaluation places on the precomputed-OT pools: m direct
/// 1-of-M slots when M fits the direct bound (one offline exponentiation
/// per transfer), else the bit-decomposition fallback of ot_slots_per_query
/// arity-2 slots.
std::vector<OtDemand> ot_demand_per_query(const ompe::OmpeParams& params,
                                          unsigned degree);

}  // namespace ppds::core
