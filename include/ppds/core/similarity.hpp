#pragma once

#include <optional>
#include <vector>

#include "ppds/core/config.hpp"
#include "ppds/net/channel.hpp"
#include "ppds/svm/model.hpp"

/// \file similarity.hpp
/// Privacy-preserving data similarity evaluation (Section V of the paper).
///
/// Metric: two trained models are compared as BOUNDED hyperplanes inside
/// the data space [lo, hi]^n. With theta the angle between the planes and L
/// the distance between the centroids of their bounded parts, the paper's
/// isosceles-triangle metric is
///     T^2 = 1/4 (L^4 + L0^4) (sin^2 theta + sin^2 theta0)        (Eq. 4/6)
/// where the public constants L0, theta0 keep the two degenerate cases
/// (parallel planes / coincident centroids) distinguishable from the exact
/// match. Smaller T means more similar models.
///
/// The private protocol (linear case):
///   0. Bob sends ||mB||^2 and ||wB||^2 (vector moduli only).
///   1. Two degree-1 OMPE rounds give Bob the amplified dot products
///      x1 = ram * (mA . mB)  and  x2 = raw * (wA . wB) + rb.
///   2. One degree-4 bivariate OMPE round on Eq. (7) —
///      T^2(x1,x2) = 1/4 [(c1 - 2 d1 x1)^2 + c2][c4 - c3 (d2 (x2 + d3))^2]
///      with c/d constants known only to Alice — gives Bob T^2, hence T.
///
/// The nonlinear variant replaces every dot product by the (polynomial)
/// kernel and computes centroids of the kernel decision surface.

namespace ppds::core {

/// Geometry of the bounded data space.
struct DataSpace {
  double lo = -1.0;
  double hi = 1.0;
  double l0 = 1e-3;      ///< distance floor constant L0 (public)
  double theta0 = 1e-3;  ///< angle floor constant theta_0 in radians (public)
};

/// --- Plaintext geometry (baseline + building blocks) -----------------------

/// Boundary points of the hyperplane w.t + b = 0 within the data space:
/// Eq. (5) corner enumeration — for each dimension treated as the free
/// variable, solve at every corner assignment of the remaining dimensions
/// and keep in-range solutions. O(n * 2^(n-1)).
std::vector<math::Vec> linear_boundary_points(const math::Vec& w, double b,
                                              const DataSpace& space);

/// Boundary points of a kernel decision surface d(t) = 0: same edge
/// enumeration, 1-D bisection along each edge.
std::vector<math::Vec> kernel_boundary_points(const svm::SvmModel& model,
                                              const DataSpace& space);

/// Centroid of a bounded plane = mean of its boundary points. nullopt when
/// the surface does not intersect the data space.
std::optional<math::Vec> bounded_centroid(const std::vector<math::Vec>& pts);

/// The paper's squared metric from raw ingredients (Eq. 4).
double triangle_metric_squared(double centroid_dist2, double cos2_theta,
                               const DataSpace& space);

/// Plaintext (non-private) similarity between two linear models — the
/// "ordinary similarity evaluation" baseline of Fig. 10. Returns T.
double ordinary_similarity(const svm::SvmModel& a, const svm::SvmModel& b,
                           const DataSpace& space);

/// A model with its bounded-plane geometry precomputed (the centroid
/// enumeration is a one-time per-model cost; both the ordinary and the
/// private evaluation amortize it across comparisons).
struct PreparedModel {
  math::Vec w;
  math::Vec centroid;

  static PreparedModel prepare(const svm::SvmModel& model,
                               const DataSpace& space);
};

/// Per-comparison cost of the ordinary evaluation (geometry precomputed) —
/// the fair baseline for Fig. 10's per-evaluation timing.
double ordinary_similarity_prepared(const PreparedModel& a,
                                    const PreparedModel& b,
                                    const DataSpace& space);

/// Plaintext nonlinear similarity per Section V-C (kernelized T).
double ordinary_similarity_kernel(const svm::SvmModel& a,
                                  const svm::SvmModel& b,
                                  const DataSpace& space);

/// --- Private two-party protocol --------------------------------------------

/// Alice's side of one similarity evaluation. Learns only ||mB||^2, ||wB||^2.
class SimilarityServer {
 public:
  SimilarityServer(const svm::SvmModel& model, DataSpace space,
                   SchemeConfig config);

  /// Serves one evaluation over the channel.
  void serve(net::Endpoint& channel, Rng& rng) const;

  const math::Vec& centroid() const { return centroid_; }

 private:
  DataSpace space_;
  SchemeConfig config_;
  svm::Kernel kernel_;
  math::Vec w_;         ///< linear weights (linear kernel path)
  double bias_ = 0.0;
  math::Vec centroid_;
  bool kernelized_ = false;
  svm::SvmModel model_; ///< kept for the kernel path
};

/// Bob's side; learns T.
class SimilarityClient {
 public:
  SimilarityClient(const svm::SvmModel& model, DataSpace space,
                   SchemeConfig config);

  /// Runs one evaluation; returns the similarity value T (smaller = more
  /// similar).
  double evaluate(net::Endpoint& channel, Rng& rng) const;

 private:
  DataSpace space_;
  SchemeConfig config_;
  svm::Kernel kernel_;
  math::Vec w_;
  math::Vec centroid_;
  bool kernelized_ = false;
  double w_norm2_ = 0.0;  ///< ||wB||^2 resp. K(wB, wB)
  double m_norm2_ = 0.0;  ///< ||mB||^2 resp. K(mB, mB)
};

}  // namespace ppds::core
