#pragma once

#include <vector>

#include "ppds/common/secret_taint.hpp"
#include "ppds/core/config.hpp"
#include "ppds/math/monomial.hpp"
#include "ppds/net/channel.hpp"
#include "ppds/svm/model.hpp"

/// \file classification.hpp
/// Privacy-preserving data classification (Section IV of the paper).
///
/// Alice (ClassificationServer) owns a trained SVM; Bob
/// (ClassificationClient) owns unlabeled samples. Per query Bob learns only
/// the randomized decision value ra * d(t̃) — hence the class sign — while
/// Alice learns nothing about t̃ and Bob learns nothing about the model
/// (Level 1), nor can colluding clients reconstruct it (Level 2, thanks to
/// the fresh per-query amplifier ra > 0).
///
/// Public between the parties: feature dimension, kernel type and kernel
/// hyperparameters (a0, b0, p / Taylor order), and the SchemeConfig. Secret:
/// Alice's support vectors / coefficients / bias, Bob's sample.

namespace ppds::core {

/// The public protocol profile both parties derive from the kernel: how the
/// decision function is represented as a polynomial.
struct ClassificationProfile {
  std::size_t input_dim = 0;       ///< n, Bob's feature count
  std::size_t poly_arity = 0;      ///< r, variates of the OMPE polynomial
  unsigned declared_degree = 1;    ///< p, drives m = p*q + 1
  svm::Kernel kernel;              ///< public kernel hyperparameters
  /// Monomial basis for kernels that need an input transform
  /// (empty for the linear kernel: tau == t).
  std::vector<math::Exponents> monomials;
  /// Evaluation DAG over `monomials` (built once in make()): tau_j =
  /// tau_parent(j) * t_var(j), so the client transform costs one multiply
  /// per monomial instead of a per-monomial power walk. Bitwise-identical
  /// to math::monomial_transform (same ascending-variable product order).
  math::MonomialDag monomial_dag;

  /// Builds the profile both parties agree on. \p taylor_order is the
  /// truncation degree for RBF/sigmoid kernels (ignored otherwise).
  static ClassificationProfile make(std::size_t input_dim,
                                    const svm::Kernel& kernel,
                                    unsigned taylor_order = 4);

  /// Bob's local transform t -> tau (identity for the linear kernel).
  std::vector<double> transform(const std::vector<double>& sample) const;

  /// Batched transform, bit-identical per sample to transform(): sweeps the
  /// monomial DAG over blocks of eight samples in an SoA layout, turning
  /// the latency-bound per-sample multiply chain into eight independent
  /// chains the compiler vectorizes. The batch query paths pick it when
  /// SchemeConfig::ompe.use_simd_field is set.
  std::vector<std::vector<double>> transform_batch(
      const std::vector<std::vector<double>>& samples) const;
};

/// Alice: serves private classification queries from her model.
class ClassificationServer {
 public:
  /// \p model must use the same kernel the profile was built from.
  ClassificationServer(svm::SvmModel model, ClassificationProfile profile,
                       SchemeConfig config);

  /// Serves \p count queries over the channel. \p external, when given, is
  /// a caller-owned OtBundle reused across sessions (persistent silent-OT
  /// pools: the seed agreement and pad reservoir survive the session); by
  /// default a session-local bundle is built and torn down here.
  void serve(net::Endpoint& channel, std::size_t count, Rng& rng,
             OtBundle* external = nullptr) const;

 private:
  PPDS_SECRET svm::SvmModel model_;
  ClassificationProfile profile_;
  SchemeConfig config_;
  /// Monomial-basis kernels (polynomial) expand to a LINEAR function of the
  /// transformed variates tau: coefficients + constant, served through the
  /// OMPE linear fast path. Other kernels keep the generic MultiPoly.
  bool linear_in_tau_ = false;
  PPDS_SECRET std::vector<double> tau_coeffs_;
  PPDS_SECRET double tau_constant_ = 0.0;
  PPDS_SECRET math::MultiPoly poly_;
};

/// The coefficient form of the expansion for monomial-basis profiles:
/// d(tau) = coeffs . tau + constant. Cheaper than a MultiPoly by a factor
/// of the arity (325k variates for the a1a..a9a nonlinear runs).
struct LinearExpansion {
  std::vector<double> coeffs;
  double constant = 0.0;
};

LinearExpansion expand_decision_coefficients(
    const svm::SvmModel& model, const ClassificationProfile& profile);

/// Bob: issues private classification queries.
class ClassificationClient {
 public:
  ClassificationClient(ClassificationProfile profile, SchemeConfig config);

  /// One query: returns the randomized decision value ra * d(t̃) (sign is
  /// the class). The paper's Bob only ever uses the sign; the raw value is
  /// exposed to let the attack evaluations show it is useless (Fig. 5).
  double query_value(net::Endpoint& channel, const std::vector<double>& sample,
                     Rng& rng) const;

  /// One query, returning the class label in {+1, -1}.
  int classify(net::Endpoint& channel, const std::vector<double>& sample,
               Rng& rng) const;

  /// Batch of queries against a server serving the same count. REQUIRED
  /// form for OtEngine::kPrecomputed (the offline OT pool is sized and
  /// exchanged once for the whole batch); equivalent to a loop of
  /// query_value() for the other engines. \p external as in
  /// ClassificationServer::serve().
  std::vector<double> query_values_batch(
      net::Endpoint& channel, const std::vector<std::vector<double>>& samples,
      Rng& rng, OtBundle* external = nullptr) const;

  /// Batch classify: signs of query_values_batch.
  std::vector<int> classify_batch(
      net::Endpoint& channel, const std::vector<std::vector<double>>& samples,
      Rng& rng, OtBundle* external = nullptr) const;

 private:
  ClassificationProfile profile_;
  SchemeConfig config_;
};

/// Expands a trained model's decision function into the profile's polynomial
/// basis (shared by the server and by tests).
math::MultiPoly expand_decision_function(const svm::SvmModel& model,
                                         const ClassificationProfile& profile);

}  // namespace ppds::core
