#pragma once

#include "ppds/core/classification.hpp"
#include "ppds/svm/multiclass.hpp"

/// \file multiclass.hpp
/// Privacy-preserving one-vs-one multiclass classification.
///
/// Composition of the paper's binary protocol: per sample, the parties run
/// one private binary classification per class pair; the client tallies the
/// pairwise signs locally and outputs the majority label. The trainer
/// learns nothing about the sample (each pairwise run has Level-1 privacy);
/// the client learns the K(K-1)/2 pairwise signs — strictly more than the
/// final label, but each sign is still only a randomized-value sign, so the
/// Level-2 argument (amplified values, Fig. 5/6) applies per pair.
///
/// The class-pair LIST (which labels exist) is public protocol metadata,
/// like the feature dimension.

namespace ppds::core {

/// Alice: serves private multiclass queries.
class MulticlassServer {
 public:
  /// \p profile must match the kernel every pairwise model was trained
  /// with. Precomputed OT is not supported here (use per-pair batching at
  /// the call site if needed).
  MulticlassServer(svm::MulticlassModel model, ClassificationProfile profile,
                   SchemeConfig config);

  /// Serves \p count multiclass queries (count * num_pairs binary rounds).
  void serve(net::Endpoint& channel, std::size_t count, Rng& rng) const;

  std::size_t num_pairs() const { return servers_.size(); }

 private:
  svm::MulticlassModel model_;
  ClassificationProfile profile_;
  SchemeConfig config_;
  std::vector<ClassificationServer> servers_;  // one per class pair
};

/// Bob: issues private multiclass queries.
class MulticlassClient {
 public:
  /// \p vote_book is the public pair list + tally rule: a MulticlassModel
  /// whose pairwise labels MATCH the server's (its binary models are not
  /// used — only labels/pair order). In a deployment this is protocol
  /// metadata; here the natural way to carry it is the type itself.
  MulticlassClient(const svm::MulticlassModel& vote_book,
                   ClassificationProfile profile, SchemeConfig config);

  /// One private multiclass query: returns the winning class label.
  int classify(net::Endpoint& channel, const std::vector<double>& sample,
               Rng& rng) const;

 private:
  std::vector<std::pair<int, int>> pair_labels_;
  std::vector<int> labels_;
  ClassificationClient binary_;
};

}  // namespace ppds::core
