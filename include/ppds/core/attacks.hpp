#pragma once

#include <vector>

#include "ppds/math/vec.hpp"

/// \file attacks.hpp
/// The paper's Level-2 privacy evaluations (Section VI-A, Figs. 5 and 6):
/// what a colluding group of clients can reconstruct from the values the
/// classification protocol hands back.
///
/// Fig. 5 — with the per-query amplifier ra in place, clients only see
/// r_i = ra_i * d(t_i) with fresh unknown ra_i > 0. The best they can do is
/// fit a hyperplane to (t_i, r_i); the estimates "keep rambling".
///
/// Fig. 6 — if ra were OMITTED, clients see exact distances d(t_i) and
/// n + 1 queries suffice to solve the linear system t_i . w + b = d(t_i)
/// exactly, fully recovering the model.

namespace ppds::core {

/// A fitted hyperplane estimate (w, b).
struct ModelEstimate {
  math::Vec w;
  double b = 0.0;
};

/// Least-squares fit of a hyperplane through (sample, value) observations —
/// the collusion estimator behind Fig. 5. Requires >= dim+1 observations.
ModelEstimate estimate_hyperplane(const std::vector<math::Vec>& samples,
                                  const std::vector<double>& values);

/// Exact reconstruction from dim+1 (or more) EXACT decision values — the
/// Fig. 6 attack that succeeds when ra is omitted. Uses the first dim+1
/// observations; throws if the system is singular.
ModelEstimate reconstruct_exact(const std::vector<math::Vec>& samples,
                                const std::vector<double>& values);

/// Angle in degrees between an estimated and the true hyperplane direction
/// (0 = perfect direction recovery, 90 = orthogonal). Sign-invariant.
double direction_error_degrees(const math::Vec& estimated,
                               const math::Vec& truth);

}  // namespace ppds::core
