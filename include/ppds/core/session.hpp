#pragma once

#include "ppds/core/classification.hpp"
#include "ppds/core/similarity.hpp"

/// \file session.hpp
/// Session layer for the classification protocol: a handshake that verifies
/// both parties agree on ALL public parameters before any private data
/// flows.
///
/// The OMPE sender already rejects requests whose shape disagrees with its
/// parameters, but by then the client has shipped a full request. In a
/// deployment the parties negotiate first: the client sends a hello
/// containing a digest of its (profile, scheme-config) view and the number
/// of queries it intends to run; the server compares digests and either
/// acknowledges or denies. Parameter drift (a different q, another kernel
/// degree, a mismatched monomial basis) is caught in one round trip with an
/// unambiguous error on both sides.
///
/// Wire format (little-endian; see docs/PROTOCOL.md):
///   hello:  "PPDS" magic (4 bytes), u32 protocol version, 32-byte digest,
///           u64 session id (client-drawn, adopted by both endpoints on
///           success; similarity hellos omit the query count), u64 query
///           count
///   ack:    u8 status (1 = accepted, 0 = denied), 32-byte server digest
///           (echoed so a denied client can log both views)
///
/// The handshake itself runs at frame stage kHandshake / session id 0; on
/// an accepting ack both endpoints adopt the client's session id, so every
/// later frame is rejected if it strays across sessions (net/framing.hpp).

namespace ppds::core {

/// Canonical digest of every public protocol parameter: profile shape,
/// kernel hyperparameters, monomial basis, OMPE parameters, OT engine and
/// group. Two parties with equal digests will interoperate.
crypto::Digest protocol_digest(const ClassificationProfile& profile,
                               const SchemeConfig& config);

/// Server side: performs the handshake, then serves the negotiated number
/// of queries. Throws ProtocolError on any mismatch (after sending the
/// denial so the client fails cleanly too). \p external, when given, is a
/// caller-owned OtBundle reused across sessions on the same connection
/// (persistent silent-OT pools — see ClassificationServer::serve).
void serve_session(const ClassificationServer& server,
                   const ClassificationProfile& profile,
                   const SchemeConfig& config, net::Endpoint& channel,
                   Rng& rng, std::size_t max_queries = 1 << 20,
                   OtBundle* external = nullptr);

/// Client side: handshakes for samples.size() queries, then classifies them
/// all. Throws ProtocolError if the server denies the parameters.
std::vector<int> classify_session(const ClassificationClient& client,
                                  const ClassificationProfile& profile,
                                  const SchemeConfig& config,
                                  net::Endpoint& channel,
                                  const std::vector<std::vector<double>>& samples,
                                  Rng& rng, OtBundle* external = nullptr);

/// Digest of the similarity protocol's public parameters (data space,
/// kernel, scheme config).
crypto::Digest similarity_digest(const svm::Kernel& kernel,
                                 const DataSpace& space,
                                 const SchemeConfig& config);

/// Server side of a similarity session: handshake, then one evaluation.
void serve_similarity_session(const SimilarityServer& server,
                              const svm::Kernel& kernel,
                              const DataSpace& space,
                              const SchemeConfig& config,
                              net::Endpoint& channel, Rng& rng);

/// Client side: handshake, then one evaluation; returns T.
double evaluate_similarity_session(const SimilarityClient& client,
                                   const svm::Kernel& kernel,
                                   const DataSpace& space,
                                   const SchemeConfig& config,
                                   net::Endpoint& channel, Rng& rng);

}  // namespace ppds::core
