#pragma once

#include <cstdint>
#include <vector>

#include "ppds/common/thread_pool.hpp"
#include "ppds/core/session.hpp"

/// \file session_pool.hpp
/// Parallel session layer: runs many independent two-party sessions
/// concurrently on a ThreadPool.
///
/// One session is inherently sequential (its messages form a chain), so
/// multi-query throughput comes from running whole SESSIONS in parallel:
/// classify_batch() partitions the samples into fixed-size chunks and runs
/// one complete session (handshake + queries) per chunk. Chunk boundaries
/// and per-chunk RNG seeds depend only on (seed, chunk_size) — never on the
/// thread count — so results are bit-identical across pool sizes, which the
/// determinism tests pin down.
///
/// The crypto layer is shared safely: DhGroup is logically immutable (its
/// lazy fixed-base table is built under std::call_once), and every session
/// gets its own Rng, OtBundle and channel.

namespace ppds::core {

/// SplitMix64-mixed per-chunk seed: decorrelates chunk RNG streams even for
/// adjacent (seed, stream) inputs.
std::uint64_t chunk_seed(std::uint64_t seed, std::uint64_t stream);

/// Runs classification sessions (one server + one client pair per chunk)
/// over an owned ThreadPool.
class SessionPool {
 public:
  /// \p server and \p client must outlive the pool and agree on
  /// (\p profile, \p config) — sessions fail their handshake otherwise.
  SessionPool(const ClassificationServer& server,
              const ClassificationClient& client,
              ClassificationProfile profile, SchemeConfig config,
              std::size_t threads = ThreadPool::default_concurrency());

  /// Classifies all samples, \p chunk_size queries per session. Returns
  /// labels in input order; deterministic given \p seed (thread-count
  /// independent).
  std::vector<int> classify_batch(
      const std::vector<std::vector<double>>& samples, std::uint64_t seed,
      std::size_t chunk_size = 8);

  std::size_t threads() const { return pool_.size(); }

 private:
  const ClassificationServer* server_;
  const ClassificationClient* client_;
  ClassificationProfile profile_;
  SchemeConfig config_;
  ThreadPool pool_;
};

/// Runs independent similarity evaluations (one full session each) in
/// parallel. Each evaluation compares the same two models, so this measures
/// repeated-evaluation throughput (and exercises concurrency); results are
/// deterministic in input order given \p seed.
class SimilaritySessionPool {
 public:
  SimilaritySessionPool(const SimilarityServer& server,
                        const SimilarityClient& client, svm::Kernel kernel,
                        DataSpace space, SchemeConfig config,
                        std::size_t threads = ThreadPool::default_concurrency());

  std::vector<double> evaluate_batch(std::size_t count, std::uint64_t seed);

  std::size_t threads() const { return pool_.size(); }

 private:
  const SimilarityServer* server_;
  const SimilarityClient* client_;
  svm::Kernel kernel_;
  DataSpace space_;
  SchemeConfig config_;
  ThreadPool pool_;
};

}  // namespace ppds::core
