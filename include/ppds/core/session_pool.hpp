#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "ppds/common/thread_pool.hpp"
#include "ppds/core/session.hpp"
#include "ppds/net/fault.hpp"

/// \file session_pool.hpp
/// Parallel session layer: runs many independent two-party sessions
/// concurrently on a ThreadPool.
///
/// One session is inherently sequential (its messages form a chain), so
/// multi-query throughput comes from running whole SESSIONS in parallel:
/// classify_batch() partitions the samples into fixed-size chunks and runs
/// one complete session (handshake + queries) per chunk. Chunk boundaries
/// and per-chunk RNG seeds depend only on (seed, chunk_size) — never on the
/// thread count — so results are bit-identical across pool sizes, which the
/// determinism tests pin down.
///
/// The crypto layer is shared safely: DhGroup is logically immutable (its
/// lazy fixed-base table is built under std::call_once), and every session
/// gets its own Rng, OtBundle and channel.

namespace ppds::core {

/// SplitMix64-mixed per-chunk seed: decorrelates chunk RNG streams even for
/// adjacent (seed, stream) inputs.
std::uint64_t chunk_seed(std::uint64_t seed, std::uint64_t stream);

/// Whole-session retry policy. A failed session (any ProtocolError:
/// timeout, fault-corrupted frame, closed channel, backpressure) is
/// discarded entirely — its channels, its OT precompute, its randomness —
/// and re-run from the handshake with FRESH per-attempt randomness. This is
/// safe because every OMPE evaluation draws fresh amplifiers, masks and
/// covers: a retried query reveals nothing beyond what one clean run
/// reveals (docs/PROTOCOL.md §7; resuming a half-consumed session would
/// not be). Attempt 0 uses exactly the original per-chunk seeds, so a
/// policy with max_attempts == 1 is bit-identical to no retry layer at all.
struct RetryPolicy {
  std::size_t max_attempts = 1;  ///< 1 = fail on first error
  std::chrono::milliseconds backoff{0};  ///< sleep before attempt n >= 1
  double backoff_multiplier = 2.0;       ///< exponential growth per attempt
  /// Deterministic jitter: the backoff is scaled by a factor in
  /// [1 - jitter, 1 + jitter] drawn from a SplitMix64 stream over the
  /// session seed (reproducible, unlike wall-clock-seeded jitter).
  double jitter = 0.0;
};

/// Per-attempt RNG seed: attempt 0 uses \p base EXACTLY (a fault-free run
/// is bit-identical to no retry layer at all, which the determinism tests
/// pin); attempts n >= 1 derive fresh decorrelated streams — a retried
/// session re-randomizes everything, because resuming or replaying
/// half-consumed OT randomness would be a privacy hole, not a retry.
std::uint64_t retry_attempt_seed(std::uint64_t base, std::size_t attempt);

/// Exponential backoff with deterministic SplitMix64 jitter for attempt
/// n >= 1: a PURE function of (policy, attempt, jitter_stream), so a
/// failover client's backoff schedule is reproducible from its seed —
/// unlike wall-clock-seeded jitter, a chaos run replays its exact delays.
std::chrono::milliseconds retry_backoff(const RetryPolicy& retry,
                                        std::size_t attempt,
                                        std::uint64_t jitter_stream);

/// Which wire a pool's per-session channels run over.
enum class TransportKind {
  kInProcess,   ///< simulated duplex queues (net::make_channel)
  kSocketPair,  ///< real AF_UNIX stream sockets (net::make_socket_pair)
};

/// Transport configuration of the per-session channels a pool creates:
/// queue bounds and latency model, a receive deadline, optional
/// deterministic fault injection (chaos tests), and the retry policy.
struct TransportOptions {
  /// kSocketPair moves every frame through the kernel instead of the
  /// in-process queues — same framing, same validation, same fault-decision
  /// streams (net::FaultEngine), so the whole chaos matrix reruns over real
  /// file descriptors by flipping this one knob. `channel` queue bounds and
  /// latency then do not apply (the kernel socket buffer is the queue).
  TransportKind kind = TransportKind::kInProcess;
  net::ChannelOptions channel;
  /// recv() deadline measured from session-attempt start; zero blocks
  /// forever. A silent peer (e.g. its frame was dropped) then surfaces as
  /// TimeoutError instead of a hang.
  std::chrono::milliseconds recv_timeout{0};
  /// Faults injected into party A's (server's) / party B's (client's)
  /// outgoing frames. Default: none.
  net::FaultSpec fault_a;
  net::FaultSpec fault_b;
  /// Seed of the fault-decision streams; every (chunk, attempt, direction)
  /// derives its own SplitMix64 stream from it, so runs reproduce exactly.
  std::uint64_t fault_seed = 0;
  RetryPolicy retry;
};

/// Runs classification sessions (one server + one client pair per chunk)
/// over an owned ThreadPool.
class SessionPool {
 public:
  /// \p server and \p client must outlive the pool and agree on
  /// (\p profile, \p config) — sessions fail their handshake otherwise.
  SessionPool(const ClassificationServer& server,
              const ClassificationClient& client,
              ClassificationProfile profile, SchemeConfig config,
              std::size_t threads = ThreadPool::default_concurrency());

  /// Classifies all samples, \p chunk_size queries per session. Returns
  /// labels in input order; deterministic given \p seed (thread-count
  /// independent).
  std::vector<int> classify_batch(
      const std::vector<std::vector<double>>& samples, std::uint64_t seed,
      std::size_t chunk_size = 8);

  /// As above, over explicitly configured transport: bounded/latency
  /// channels, receive deadlines, deterministic fault injection, and
  /// whole-session retry (see TransportOptions). With the default options
  /// this is identical to the plain overload.
  std::vector<int> classify_batch(
      const std::vector<std::vector<double>>& samples, std::uint64_t seed,
      std::size_t chunk_size, const TransportOptions& transport);

  std::size_t threads() const { return pool_.size(); }

 private:
  const ClassificationServer* server_;
  const ClassificationClient* client_;
  ClassificationProfile profile_;
  SchemeConfig config_;
  ThreadPool pool_;
};

/// Runs independent similarity evaluations (one full session each) in
/// parallel. Each evaluation compares the same two models, so this measures
/// repeated-evaluation throughput (and exercises concurrency); results are
/// deterministic in input order given \p seed.
class SimilaritySessionPool {
 public:
  SimilaritySessionPool(const SimilarityServer& server,
                        const SimilarityClient& client, svm::Kernel kernel,
                        DataSpace space, SchemeConfig config,
                        std::size_t threads = ThreadPool::default_concurrency());

  std::vector<double> evaluate_batch(std::size_t count, std::uint64_t seed);

  /// As above over explicitly configured transport (see TransportOptions).
  std::vector<double> evaluate_batch(std::size_t count, std::uint64_t seed,
                                     const TransportOptions& transport);

  std::size_t threads() const { return pool_.size(); }

 private:
  const SimilarityServer* server_;
  const SimilarityClient* client_;
  svm::Kernel kernel_;
  DataSpace space_;
  SchemeConfig config_;
  ThreadPool pool_;
};

}  // namespace ppds::core
