#pragma once

#include <vector>

#include "ppds/net/channel.hpp"
#include "ppds/server/scenario.hpp"
#include "ppds/server/stats.hpp"

/// \file client.hpp
/// Client side of the ppdsd connection protocol (docs/PROTOCOL.md §8.3).
///
/// A connection carries any number of sessions back to back. Each call
/// sends the one-byte service selector at stage kNone / session 0, runs
/// the selected protocol exactly as the in-process path would (the session
/// layer is reused verbatim — that is what keeps socket transcripts
/// bit-identical), and resets the frame state for the next session.
/// goodbye() ends the connection explicitly; simply closing works too (the
/// daemon counts a boundary EOF as a clean close), but goodbye keeps the
/// daemon's books exact.

namespace ppds::server {

/// One classification session: returns the class labels for \p samples.
/// \p ot, when given, is a caller-owned OtBundle reused across sessions on
/// this connection (silent scenarios: the PPRF seed agreement runs once and
/// later sessions draw from the persistent pad ledger — see
/// core::classify_session).
std::vector<int> client_classify(
    net::Endpoint& channel, const Scenario& scenario,
    const std::vector<std::vector<double>>& samples, Rng& rng,
    core::OtBundle* ot = nullptr);

/// One similarity session: returns T between the scenario's client model
/// and the daemon's server model (smaller = more similar).
double client_similarity(net::Endpoint& channel, const Scenario& scenario,
                         Rng& rng);

/// Health probe: returns the daemon's counter snapshot (active sessions,
/// queue depths, shed counts). Answered even while the daemon drains, so a
/// probe can watch a shutdown progress; the connection stays alive for
/// further sessions.
DaemonStatsSnapshot client_health(net::Endpoint& channel);

/// Ends the connection cleanly.
void client_goodbye(net::Endpoint& channel);

}  // namespace ppds::server
