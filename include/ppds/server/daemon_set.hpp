#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "ppds/core/session_pool.hpp"
#include "ppds/net/socket.hpp"
#include "ppds/server/scenario.hpp"

/// \file daemon_set.hpp
/// DaemonSet: a failover client driving a fleet of ppdsd replicas.
///
/// A query batch is sharded into fixed-size chunks (the same chunking and
/// per-chunk seed derivation as core::SessionPool, so chunk boundaries
/// never depend on which replica serves what), and one worker thread per
/// daemon address drains a shared chunk queue over a keep-alive
/// connection. Faults move work, not lose it:
///
///   - busy(over-cap / rate-limited): the chunk is requeued — any idle
///     replica may take it immediately — and this worker backs off for
///     max(the daemon's retry-after hint, the deterministic exponential
///     backoff) before knocking again.
///   - busy(draining) or a dead daemon (connect refused, EOF, timeout,
///     repeated failures): the replica is marked lost, its in-hand chunk
///     is requeued, and the surviving workers finish the batch.
///
/// The batch completes as long as ONE replica survives, and the labels are
/// bit-identical no matter which replica served which chunk: a chunk's
/// client randomness is a pure function of (seed, chunk, attempt) — fresh
/// per attempt, never resumed, the privacy rule from core::RetryPolicy —
/// and the classification labels themselves are randomness-invariant
/// (sign(d) survives the masking), so replica identity cannot leak into
/// results. Backoff delays are equally reproducible: backoff() is a pure
/// function of (policy, seed, chunk, attempt) via core::retry_backoff.

namespace ppds::server {

struct DaemonSetOptions {
  /// Queries per chunk = per session (SessionPool's default).
  std::size_t chunk_size = 8;
  /// Retry shape: max_attempts bounds CONSECUTIVE failures a worker
  /// tolerates on its replica before declaring it lost, and (scaled by the
  /// replica count) the total attempts a chunk may consume before the
  /// batch fails. backoff/multiplier/jitter drive the deterministic
  /// backoff schedule.
  core::RetryPolicy retry{
      /*max_attempts=*/4, std::chrono::milliseconds{5},
      /*backoff_multiplier=*/2.0, /*jitter=*/0.5};
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds recv_timeout{30000};
  net::SocketOptions socket;  ///< applied to every connection
};

/// Monotone counters describing how the batch actually ran.
struct DaemonSetStats {
  std::atomic<std::uint64_t> chunks_ok{0};
  /// Chunks requeued after a failed attempt (busy, disconnect, timeout) —
  /// each is a failover opportunity for another replica.
  std::atomic<std::uint64_t> chunk_retries{0};
  std::atomic<std::uint64_t> busy_sheds{0};  ///< busy frames received
  std::atomic<std::uint64_t> attempts_failed{0};  ///< non-busy failures
  std::atomic<std::uint64_t> replicas_lost{0};    ///< addresses given up on
};

class DaemonSet {
 public:
  /// \p addresses are the replica daemons; all must serve \p scenario
  /// (handshakes fail otherwise).
  DaemonSet(Scenario scenario, std::vector<net::SocketAddress> addresses,
            DaemonSetOptions options = {});

  /// Classifies all samples across the fleet. Returns labels in input
  /// order; deterministic given \p seed regardless of replica scheduling.
  /// Throws ProtocolError when a chunk exhausts its attempt budget or
  /// every replica is lost with work outstanding.
  std::vector<int> classify(const std::vector<std::vector<double>>& samples,
                            std::uint64_t seed);

  const DaemonSetStats& stats() const { return stats_; }
  std::size_t replicas() const { return addresses_.size(); }

  /// The deterministic backoff before attempt n >= 1 of chunk \p chunk: a
  /// pure function, so tests (and incident reruns) can replay the exact
  /// schedule a batch used.
  static std::chrono::milliseconds backoff(const core::RetryPolicy& retry,
                                           std::uint64_t seed,
                                           std::size_t chunk,
                                           std::size_t attempt);

 private:
  struct Batch;  // shared chunk queue + results (defined in the .cpp)

  void worker(std::size_t address_index, Batch& batch,
              const std::vector<std::vector<double>>& samples,
              std::uint64_t seed);

  Scenario scenario_;
  std::vector<net::SocketAddress> addresses_;
  DaemonSetOptions options_;
  DaemonSetStats stats_;
};

}  // namespace ppds::server
