#pragma once

#include <cstdint>

#include "ppds/common/bytes.hpp"
#include "ppds/common/error.hpp"

/// \file stats.hpp
/// Copyable daemon statistics snapshot and its wire form.
///
/// DaemonStats (daemon.hpp) is a bundle of atomics — correct for lock-free
/// counting, but non-copyable, so it cannot be returned from a function,
/// stored in a report, or serialized to a health probe. This snapshot is
/// the plain-value view: DaemonStats::snapshot() reads every counter once
/// (each load is atomic; the snapshot as a whole is a consistent-enough
/// monitoring view, not a transaction) and the kHealth service ships it to
/// clients as a fixed-layout frame, so a probe can see queue depth and shed
/// counts without attaching a debugger to the daemon.

namespace ppds::server {

/// Plain-value copy of every daemon counter and gauge. Monotone counters
/// unless marked as a gauge.
struct DaemonStatsSnapshot {
  std::uint64_t connections_accepted = 0;  ///< every successful ::accept
  std::uint64_t connections_closed = 0;    ///< clean goodbyes/EOFs
  std::uint64_t connections_reaped = 0;    ///< idle-timeout kills
  std::uint64_t connections_failed = 0;    ///< closed by a failed session
  std::uint64_t connections_rejected = 0;  ///< shed at accept with kBusy
  std::uint64_t rejected_over_cap = 0;     ///< ... because max_connections
  std::uint64_t rejected_rate_limited = 0; ///< ... because token bucket
  std::uint64_t rejected_draining = 0;     ///< ... because SIGTERM drain
  std::uint64_t sessions_ok = 0;
  std::uint64_t sessions_failed = 0;  ///< aborted mid-protocol
  std::uint64_t sessions_shed = 0;    ///< busy(draining) instead of serving
  std::uint64_t health_probes = 0;    ///< kHealth services answered
  std::uint64_t active_sessions = 0;  ///< gauge
  std::uint64_t live_connections = 0; ///< gauge: admitted and not yet retired
  std::uint64_t parked_depth = 0;     ///< gauge
  std::uint64_t ready_depth = 0;      ///< gauge
  std::uint64_t parked_peak = 0;      ///< high-water mark of parked_depth
  std::uint64_t ready_peak = 0;       ///< high-water mark of ready_depth

  /// Every accepted connection must end in exactly one bucket; true once
  /// the daemon has drained (gauges at zero).
  bool books_balance() const {
    return connections_accepted == connections_closed + connections_reaped +
                                       connections_failed +
                                       connections_rejected;
  }
};

/// Field count of the kHealth wire form (u64 each, little-endian, in
/// declaration order).
inline constexpr std::size_t kStatsSnapshotFields = 18;

inline Bytes encode_stats(const DaemonStatsSnapshot& s) {
  ByteWriter w;
  w.u64(s.connections_accepted);
  w.u64(s.connections_closed);
  w.u64(s.connections_reaped);
  w.u64(s.connections_failed);
  w.u64(s.connections_rejected);
  w.u64(s.rejected_over_cap);
  w.u64(s.rejected_rate_limited);
  w.u64(s.rejected_draining);
  w.u64(s.sessions_ok);
  w.u64(s.sessions_failed);
  w.u64(s.sessions_shed);
  w.u64(s.health_probes);
  w.u64(s.active_sessions);
  w.u64(s.live_connections);
  w.u64(s.parked_depth);
  w.u64(s.ready_depth);
  w.u64(s.parked_peak);
  w.u64(s.ready_peak);
  return w.take();
}

inline DaemonStatsSnapshot decode_stats(const Bytes& payload) {
  if (payload.size() != kStatsSnapshotFields * 8) {
    throw SerializationError(
        "health reply: expected " +
        std::to_string(kStatsSnapshotFields * 8) + " bytes, got " +
        std::to_string(payload.size()));
  }
  ByteReader r(payload);
  DaemonStatsSnapshot s;
  s.connections_accepted = r.u64();
  s.connections_closed = r.u64();
  s.connections_reaped = r.u64();
  s.connections_failed = r.u64();
  s.connections_rejected = r.u64();
  s.rejected_over_cap = r.u64();
  s.rejected_rate_limited = r.u64();
  s.rejected_draining = r.u64();
  s.sessions_ok = r.u64();
  s.sessions_failed = r.u64();
  s.sessions_shed = r.u64();
  s.health_probes = r.u64();
  s.active_sessions = r.u64();
  s.live_connections = r.u64();
  s.parked_depth = r.u64();
  s.ready_depth = r.u64();
  s.parked_peak = r.u64();
  s.ready_peak = r.u64();
  return s;
}

}  // namespace ppds::server
