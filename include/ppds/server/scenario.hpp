#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ppds/core/classification.hpp"
#include "ppds/core/config.hpp"
#include "ppds/core/similarity.hpp"
#include "ppds/data/synthetic.hpp"
#include "ppds/svm/model.hpp"

/// \file scenario.hpp
/// Deterministic protocol scenarios shared by the daemon, the CLI, the
/// server bench and the tests.
///
/// Both ends of a socket session must agree on every public parameter
/// (kernel, monomial basis, SchemeConfig, data space) or the handshake
/// digest check denies the session. Out-of-band agreement over a real
/// socket means BOTH processes reconstruct the same parameters from a
/// short text spec plus a seed: `ppdsd --scenario diabetes:poly` and
/// `ppds-cli --scenario diabetes:poly` derive identical digests (and
/// identical models, so results are checkable against the plain model).
///
/// Spec grammar:
///   <dataset>[:linear|:poly][:fast|:precomputed|:silent|:secure]
///            [:reservoir][:refill=<n>]
///   dataset — any Table I synthetic dataset name (data/synthetic.hpp)
///   kernel  — linear (default) or the paper's polynomial kernel
///   preset  — SchemeConfig preset: fast (loopback OT, default),
///             precomputed (offline Naor-Pinkas + online hash/XOR),
///             silent (precomputed engine with the PPRF silent offline
///             phase), secure (full Naor-Pinkas per transfer)
///   reservoir — background pad-refill service (local-only knob; the
///             protocol digest ignores it, like eval_threads)
///   refill=<n> — precomputed-OT refill batch size (local-only knob,
///             digest-excluded)
/// Everything downstream (trained models, query samples) is a pure
/// function of (spec text, seed).

namespace ppds::server {

/// Parsed scenario spec (see file comment for the grammar).
struct ScenarioSpec {
  std::string dataset = "diabetes";
  bool polynomial = false;
  enum class Preset { kFast, kPrecomputed, kSilent, kSecure };
  Preset preset = Preset::kFast;
  /// Background pad-refill service (digest-excluded local knob).
  bool reservoir = false;
  /// Precomputed-OT refill batch; 0 means "use the SchemeConfig default"
  /// (digest-excluded local knob).
  std::size_t refill_batch = 0;

  /// Parses the grammar in the file comment; throws InvalidArgument on
  /// unknown datasets or tokens.
  static ScenarioSpec parse(const std::string& text);

  std::string to_string() const;
};

/// Everything a party needs to run sessions under one scenario. The server
/// side uses server_model; the client side uses client_model (a model
/// trained on an independent sample of the same distribution — the natural
/// "two parties, two private models" setup for similarity evaluation) and
/// the query pool.
struct Scenario {
  ScenarioSpec spec;
  data::DatasetSpec dataset;
  core::ClassificationProfile profile;
  core::SchemeConfig config;
  core::DataSpace space;
  svm::SvmModel server_model;
  svm::SvmModel client_model;
  /// Held-out samples for classification queries (test split, normalized
  /// the same way the models were trained).
  std::vector<std::vector<double>> queries;

  /// Builds the scenario deterministically from (text, seed): equal
  /// arguments in two processes yield equal protocol digests and equal
  /// models. Trains two small SVMs, so construction costs ~a second.
  static Scenario make(const std::string& text, std::uint64_t seed);
  static Scenario make(const ScenarioSpec& spec, std::uint64_t seed);
};

/// Service selector a client sends at the top of each session on a
/// connection (one u8 payload at stage kNone / session 0). kGoodbye ends
/// the connection cleanly; anything unknown is a ProtocolError.
enum class Service : std::uint8_t {
  kGoodbye = 0,
  kClassification = 1,
  kSimilarity = 2,
  /// Health probe: the daemon answers with a DaemonStatsSnapshot frame
  /// (server/stats.hpp) and keeps the connection alive. Served even while
  /// draining, so probes can watch a shutdown progress.
  kHealth = 3,
};

const char* service_name(Service service);

}  // namespace ppds::server
