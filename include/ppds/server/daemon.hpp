#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ppds/core/classification.hpp"
#include "ppds/core/similarity.hpp"
#include "ppds/crypto/reservoir.hpp"
#include "ppds/net/control.hpp"
#include "ppds/net/socket.hpp"
#include "ppds/server/scenario.hpp"
#include "ppds/server/stats.hpp"

/// \file daemon.hpp
/// ppdsd: the real-socket protocol daemon.
///
/// Threading model — one acceptor, one poller, N session workers:
///
///   acceptor ──▶ parked connections ◀──────────────┐
///                      │ poll(2): readable?        │ session done:
///                      ▼                           │ park again
///                 ready queue ──▶ worker pool ─────┘
///
/// A connection between sessions sits PARKED: no worker is tied to it. The
/// poller thread polls every parked fd at once; only when a client actually
/// sends its next service-select byte does the connection move to the ready
/// queue and occupy a worker for exactly one session. N workers therefore
/// multiplex an unbounded number of keep-alive connections (64 concurrent
/// clients over 8 workers in the tests), and an idle client costs one
/// pollfd, not a blocked thread.
///
/// Failure containment: every session error — protocol violation, checksum
/// mismatch, peer disconnect mid-protocol, recv timeout — is caught at the
/// worker loop, counted, and ends ONLY that connection. The protocol layer
/// has already aborted-and-wiped its OT pools by the time the worker sees
/// the exception (OtBundle::abort on the serve() unwind path; audited by
/// crypto::ot_abort_audit), so a vanished peer leaves no pad material in
/// the heap and never wedges a worker.
///
/// Shutdown (stop(), the SIGTERM path) drains gracefully: the listener
/// closes first (no new connections), in-flight sessions run to completion
/// under their recv deadlines, parked connections are closed, and every
/// thread is joined before stop() returns — including the shared pad
/// reservoir's refill thread, which is stopped AFTER the session workers so
/// no in-flight session loses its background expander mid-drain.
///
/// Overload protection: admission control happens AT THE ACCEPT, before a
/// connection costs anything but a pollfd. A connection past
/// max_connections, past the accept-rate token bucket, or arriving during
/// a drain is answered with a structured busy frame (net/control.hpp) —
/// reason code plus a retry-after hint — and closed, so shedding is
/// explicit protocol a failover client can act on, never a silent RST.
/// Every shed is counted (connections_rejected, by reason), the ready
/// queue is bounded (max_ready), and a one-byte kHealth service select
/// returns the full DaemonStatsSnapshot so probes can watch queue depth
/// and shed rates from outside the process.
///
/// Silent scenarios (SchemeConfig::silent_precompute) give each connection a
/// PERSISTENT OtBundle: the one-time base-OT seed agreement runs on the
/// connection's first classification session, and every later session on
/// that connection draws pads from the already-expanded PPRF ledger. With
/// `:reservoir` in the scenario spec the daemon additionally runs one shared
/// crypto::PadReservoir, so a parked keep-alive connection wakes to pools the
/// background thread refilled while it was idle.

namespace ppds::server {

struct DaemonOptions {
  net::SocketAddress address;  ///< listen address (tcp port 0 = ephemeral)
  std::size_t workers = 4;     ///< concurrent session executors
  /// Per-recv deadline inside a running session: a peer that goes silent
  /// mid-protocol frees the worker after this long.
  std::chrono::milliseconds recv_timeout{30000};
  /// A parked connection with no traffic for this long is reaped.
  std::chrono::milliseconds idle_timeout{30000};
  /// Upper bound on the poller's poll(2) wait; bounds how stale the stop
  /// flag / idle bookkeeping can get.
  std::chrono::milliseconds poll_slice{200};
  /// Cap a classification handshake may ask for (forwarded to
  /// serve_session).
  std::size_t max_queries = 1 << 12;
  /// Root seed for per-connection server randomness: connection k draws
  /// from Rng(splitmix64(rng_seed, k)), so a single sequential client sees
  /// a DETERMINISTIC server — that is what lets the tests pin socket
  /// transcripts bit-identical to the in-process path.
  std::uint64_t rng_seed = 0x9d5d;
  net::SocketOptions socket;  ///< applied to every accepted connection
  /// Admission cap: accepts past this many LIVE connections (admitted and
  /// not yet retired) are shed with busy(over-cap). 0 = unlimited.
  std::size_t max_connections = 0;
  /// Accept-rate token bucket: sustained accepts per second (0 = no rate
  /// limit). Accepts past the bucket are shed with busy(rate-limited).
  double accept_rate_per_sec = 0.0;
  /// Token-bucket capacity: how large an accept burst is admitted before
  /// the rate limit bites.
  double accept_burst = 8.0;
  /// Retry-after hint carried in busy(over-cap) frames — how long a polite
  /// client should back off before knocking again.
  std::chrono::milliseconds busy_retry_after{50};
  /// Drain phase of stop(): how long to wait for live connections to
  /// finish (or say goodbye) while sheds answer busy(draining), before the
  /// hard teardown. Connections still live when the grace expires are
  /// counted as reaped.
  std::chrono::milliseconds drain_grace{250};
  /// Bound on the ready queue: the poller promotes at most this many
  /// connections ahead of the workers; the rest stay parked (still
  /// readable, promoted next slice). 0 = unbounded.
  std::size_t max_ready = 0;
};

/// Monotone counters, readable while the daemon runs (and after stop()).
/// The atomics make this struct non-copyable; snapshot() is the plain-value
/// view (and what the kHealth service serializes). Books invariant, held
/// whenever the daemon is drained: every accepted connection retires into
/// exactly one of closed / reaped / failed / rejected.
struct DaemonStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_closed{0};  ///< clean goodbyes/EOFs
  std::atomic<std::uint64_t> connections_reaped{0};  ///< idle-timeout kills
  std::atomic<std::uint64_t> connections_failed{0};  ///< failed-session kills
  /// Shed at the accept with a busy frame, before admission (split out by
  /// reason below).
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> rejected_over_cap{0};
  std::atomic<std::uint64_t> rejected_rate_limited{0};
  std::atomic<std::uint64_t> rejected_draining{0};
  std::atomic<std::uint64_t> sessions_ok{0};
  std::atomic<std::uint64_t> sessions_failed{0};  ///< aborted mid-protocol
  /// Admitted connections whose service select was answered busy(draining)
  /// instead of a session (counted under connections_closed for the books).
  std::atomic<std::uint64_t> sessions_shed{0};
  std::atomic<std::uint64_t> health_probes{0};
  std::atomic<std::uint64_t> active_sessions{0};  ///< gauge, not monotone
  /// Gauge: admitted and not yet retired (parked + ready + in a worker).
  std::atomic<std::uint64_t> live_connections{0};
  std::atomic<std::uint64_t> parked_depth{0};  ///< gauge
  std::atomic<std::uint64_t> ready_depth{0};   ///< gauge
  std::atomic<std::uint64_t> parked_peak{0};   ///< high-water mark
  std::atomic<std::uint64_t> ready_peak{0};    ///< high-water mark

  DaemonStatsSnapshot snapshot() const {
    DaemonStatsSnapshot s;
    s.connections_accepted = connections_accepted.load();
    s.connections_closed = connections_closed.load();
    s.connections_reaped = connections_reaped.load();
    s.connections_failed = connections_failed.load();
    s.connections_rejected = connections_rejected.load();
    s.rejected_over_cap = rejected_over_cap.load();
    s.rejected_rate_limited = rejected_rate_limited.load();
    s.rejected_draining = rejected_draining.load();
    s.sessions_ok = sessions_ok.load();
    s.sessions_failed = sessions_failed.load();
    s.sessions_shed = sessions_shed.load();
    s.health_probes = health_probes.load();
    s.active_sessions = active_sessions.load();
    s.live_connections = live_connections.load();
    s.parked_depth = parked_depth.load();
    s.ready_depth = ready_depth.load();
    s.parked_peak = parked_peak.load();
    s.ready_peak = ready_peak.load();
    return s;
  }
};

/// True when \p fd has bytes (or an EOF) waiting to be read RIGHT NOW — a
/// zero-timeout POLLIN poll. The idle reaper calls this before killing a
/// connection that crossed idle_timeout: bytes that arrived after poll(2)
/// returned but before the reap sweep mean the client spoke just in time,
/// so the connection is served, not reaped.
bool has_pending_input(int fd);

class Daemon {
 public:
  /// Binds the listen socket (throws on bind failure) but serves nothing
  /// until start().
  Daemon(Scenario scenario, DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();
  /// Graceful two-phase drain; idempotent, returns once every thread is
  /// joined. Phase 1 (up to options.drain_grace): new accepts and parked
  /// service selects are shed with busy(draining) while in-flight sessions
  /// finish and goodbyes/health probes are still served. Phase 2 tears the
  /// rest down; connections still live are counted as reaped so the books
  /// balance.
  void stop();

  /// True once stop() has begun shedding (the SIGTERM drain window).
  bool draining() const { return draining_.load(); }

  /// The bound address with any ephemeral port resolved — what clients
  /// connect to.
  const net::SocketAddress& address() const { return listener_.address(); }

  const DaemonStats& stats() const { return stats_; }
  const Scenario& scenario() const { return scenario_; }

 private:
  struct Connection {
    std::unique_ptr<net::SocketEndpoint> channel;
    Rng rng;  ///< server-side randomness, sticky to the connection
    /// Persistent OT state (silent scenarios only): created lazily on the
    /// connection's first classification session so the PPRF seed agreement
    /// and expanded pad pools survive across keep-alive sessions. Non-silent
    /// scenarios keep nullptr — serve_session builds a per-session bundle,
    /// preserving the historical transcripts bit for bit. Torn down (and
    /// detached from the reservoir) with the connection.
    std::unique_ptr<core::OtBundle> ot;
    std::uint64_t id = 0;
    std::chrono::steady_clock::time_point last_activity;
  };

  void acceptor_loop();
  void poller_loop();
  void worker_loop();
  /// Runs exactly one session (service select + protocol) on a ready
  /// connection. Returns false when the connection is finished (goodbye,
  /// EOF, or error) and must not be parked again.
  bool run_one_session(Connection& conn);
  void park(std::unique_ptr<Connection> conn);
  void wake_poller();
  /// Sheds a just-accepted connection with a structured busy frame
  /// (counted under connections_rejected + the per-reason counter).
  void reject(net::SocketEndpoint& channel, net::BusyReason reason,
              std::uint32_t retry_after_ms);
  /// Refreshes the depth gauges and their high-water marks; call under mu_
  /// after any queue change.
  void note_queue_depths();

  Scenario scenario_;
  DaemonOptions options_;
  core::ClassificationServer classification_;
  core::SimilarityServer similarity_;
  net::SocketListener listener_;
  DaemonStats stats_;
  /// Shared background pad-refill service (scenario `:reservoir` only).
  /// Every silent connection's OtBundle attaches here; stop() shuts it down
  /// after the session workers join (the SIGTERM drain order).
  std::unique_ptr<crypto::PadReservoir> reservoir_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> next_connection_id_{0};

  std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<std::unique_ptr<Connection>> parked_;
  std::deque<std::unique_ptr<Connection>> ready_;

  int poller_wake_fds_[2] = {-1, -1};  ///< self-pipe: park()/stop() -> poll
  std::thread acceptor_;
  std::thread poller_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace ppds::server
