#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "ppds/field/m61.hpp"

/// \file m61xn.hpp
/// Data-parallel lanes over F_{2^61 - 1}.
///
/// `M61x8` packs eight independent field elements and provides
/// add/sub/mul/reduce/select on all lanes at once. The scalar M61 chain in
/// the OMPE sweeps is latency-bound (each Horner step waits on the previous
/// multiply); evaluating eight *points* per instruction turns that into a
/// throughput problem, which is where the field time actually goes.
///
/// Dispatch has two layers:
///   * compile time — an AVX2 kernel is compiled whenever the target allows
///     `__attribute__((target("avx2")))` (any x86-64 GCC/clang; no global
///     `-mavx2` needed), and a NEON-guarded path exists for aarch64;
///   * run time — `simd_caps()` probes the CPU once (and honours the
///     `PPDS_FORCE_SCALAR` environment variable) and every lane op branches
///     on the cached result.
/// The portable fallback executes the exact scalar M61 formulas lane by
/// lane, so all paths are bit-identical: a lane op must return the same
/// residues as eight scalar ops, which is what tests/field/m61xn_test.cpp
/// pins down and what keeps protocol transcripts independent of the ISA.
///
/// All inputs and outputs are canonical residues in [0, p). The only
/// exception is `M61x8::reduce`, the packed analogue of the `M61(uint64_t)`
/// constructor: it accepts arbitrary 64-bit lanes and folds them.

#if defined(__x86_64__) || defined(_M_X64)
#define PPDS_M61XN_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define PPDS_M61XN_HAVE_AVX2_TARGET 0
#endif

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define PPDS_M61XN_HAVE_NEON 1
#include <arm_neon.h>
#else
#define PPDS_M61XN_HAVE_NEON 0
#endif

namespace ppds::field {

/// Lane count of the packed type. Fixed at 8 so callers can chunk work the
/// same way on every ISA; narrower engines simply loop inside one op.
inline constexpr std::size_t kM61Lanes = 8;

/// Which SIMD engine the process selected, probed once and cached.
struct SimdCaps {
  bool avx2_compiled = false;  ///< AVX2 kernel exists in this binary.
  bool avx2_runtime = false;   ///< CPU reports AVX2 support.
  bool neon_compiled = false;  ///< NEON path compiled in (aarch64).
  bool forced_scalar = false;  ///< PPDS_FORCE_SCALAR=1 was set at first use.
  const char* active = "scalar";  ///< "avx2", "neon", or "scalar".
};

namespace detail {

inline SimdCaps probe_simd_caps() {
  SimdCaps caps;
#if PPDS_M61XN_HAVE_AVX2_TARGET
  caps.avx2_compiled = true;
  caps.avx2_runtime = __builtin_cpu_supports("avx2") != 0;
#endif
#if PPDS_M61XN_HAVE_NEON
  caps.neon_compiled = true;
#endif
  const char* force = std::getenv("PPDS_FORCE_SCALAR");
  caps.forced_scalar = force != nullptr && force[0] != '\0' && force[0] != '0';
  if (caps.forced_scalar) {
    caps.active = "scalar";
  } else if (caps.avx2_compiled && caps.avx2_runtime) {
    caps.active = "avx2";
  } else if (caps.neon_compiled) {
    caps.active = "neon";
  } else {
    caps.active = "scalar";
  }
  return caps;
}

}  // namespace detail

/// Cached capability probe. Thread-safe (magic static); the environment is
/// read exactly once, so flipping PPDS_FORCE_SCALAR mid-process has no
/// effect — set it before launch (as the CI forced-scalar leg does).
inline const SimdCaps& simd_caps() {
  static const SimdCaps caps = detail::probe_simd_caps();
  return caps;
}

namespace detail {

inline bool use_avx2() {
  const SimdCaps& caps = simd_caps();
  return caps.avx2_compiled && caps.avx2_runtime && !caps.forced_scalar;
}

inline bool use_neon() {
  const SimdCaps& caps = simd_caps();
  return caps.neon_compiled && !caps.forced_scalar;
}

}  // namespace detail

/// Eight packed residues of F_{2^61 - 1}. POD so hot loops can keep arrays
/// of lanes in registers; alignment matches one AVX2 vector pair.
struct alignas(64) M61x8 {
  std::uint64_t v[kM61Lanes];

  /// All lanes set to the same element.
  static M61x8 broadcast(M61 x) {
    M61x8 out;
    for (std::size_t i = 0; i < kM61Lanes; ++i) out.v[i] = x.value();
    return out;
  }

  /// All lanes zero.
  static M61x8 zero() { return broadcast(M61(0)); }

  /// Packs eight already-canonical elements.
  static M61x8 load(const M61* p) {
    M61x8 out;
    for (std::size_t i = 0; i < kM61Lanes; ++i) out.v[i] = p[i].value();
    return out;
  }

  /// Folds eight arbitrary 64-bit words into canonical residues — the
  /// packed analogue of the reducing M61(uint64_t) constructor.
  static M61x8 reduce(const std::uint64_t* raw);

  M61 lane(std::size_t i) const { return M61(v[i]); }

  void store(M61* p) const {
    for (std::size_t i = 0; i < kM61Lanes; ++i) p[i] = M61(v[i]);
  }

  /// Horizontal sum of all lanes (mod p); used to finish dot products.
  M61 hadd() const {
    M61 acc(0);
    for (std::size_t i = 0; i < kM61Lanes; ++i) acc = acc + M61(v[i]);
    return acc;
  }

  friend bool operator==(const M61x8& a, const M61x8& b) {
    bool eq = true;
    for (std::size_t i = 0; i < kM61Lanes; ++i) eq = eq && a.v[i] == b.v[i];
    return eq;
  }
};

namespace detail {

// ---------------------------------------------------------------------------
// Portable kernels: the scalar M61 formulas, lane by lane. These define the
// semantics; the vector kernels must match them bit for bit.
// ---------------------------------------------------------------------------

inline M61x8 add_portable(const M61x8& a, const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; ++i) {
    std::uint64_t s = a.v[i] + b.v[i];
    if (s >= M61::kP) s -= M61::kP;
    out.v[i] = s;
  }
  return out;
}

inline M61x8 sub_portable(const M61x8& a, const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; ++i) {
    std::uint64_t s = a.v[i] + M61::kP - b.v[i];
    if (s >= M61::kP) s -= M61::kP;
    out.v[i] = s;
  }
  return out;
}

inline M61x8 mul_portable(const M61x8& a, const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; ++i) {
    __extension__ using u128 = unsigned __int128;
    const u128 prod = static_cast<u128>(a.v[i]) * b.v[i];
    std::uint64_t lo = static_cast<std::uint64_t>(prod) & M61::kP;
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t s = lo + hi;
    if (s >= M61::kP) s -= M61::kP;
    out.v[i] = s;
  }
  return out;
}

inline M61x8 reduce_portable(const std::uint64_t* raw) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; ++i) {
    std::uint64_t s = (raw[i] & M61::kP) + (raw[i] >> 61);
    if (s >= M61::kP) s -= M61::kP;
    out.v[i] = s;
  }
  return out;
}

inline M61x8 select_portable(const M61x8& mask, const M61x8& a,
                             const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; ++i) {
    out.v[i] = (a.v[i] & mask.v[i]) | (b.v[i] & ~mask.v[i]);
  }
  return out;
}

inline M61x8 cmp_eq_portable(const M61x8& a, const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; ++i) {
    // Branch-free equality: all-ones lane mask iff equal.
    const std::uint64_t d = a.v[i] ^ b.v[i];
    out.v[i] = d == 0 ? ~std::uint64_t{0} : 0;
  }
  return out;
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Compiled with a per-function target attribute so the rest of
// the binary stays baseline x86-64; only reached when use_avx2() is true.
// ---------------------------------------------------------------------------

#if PPDS_M61XN_HAVE_AVX2_TARGET

// memcpy-based vector load/store: GCC folds these to single vmovdqu
// instructions, and they avoid the reinterpret_cast the raw intrinsics need.
__attribute__((target("avx2"))) inline __m256i load4_avx2(
    const std::uint64_t* p) {
  __m256i x;
  std::memcpy(&x, p, sizeof(x));
  return x;
}

__attribute__((target("avx2"))) inline void store4_avx2(std::uint64_t* p,
                                                        __m256i x) {
  std::memcpy(p, &x, sizeof(x));
}

__attribute__((target("avx2"))) inline __m256i m61_csub_avx2(__m256i s) {
  // Conditional subtract of p. All inputs here are < 2^62, so the signed
  // 64-bit compare against p-1 is exact (no sign wrap to worry about).
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(M61::kP));
  const __m256i pm1 =
      _mm256_set1_epi64x(static_cast<long long>(M61::kP - 1));
  const __m256i ge = _mm256_cmpgt_epi64(s, pm1);
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, p));
}

__attribute__((target("avx2"))) inline __m256i m61_add_avx2(__m256i a,
                                                            __m256i b) {
  return m61_csub_avx2(_mm256_add_epi64(a, b));
}

__attribute__((target("avx2"))) inline __m256i m61_sub_avx2(__m256i a,
                                                            __m256i b) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(M61::kP));
  return m61_csub_avx2(_mm256_sub_epi64(_mm256_add_epi64(a, p), b));
}

__attribute__((target("avx2"))) inline __m256i m61_mul_avx2(__m256i a,
                                                            __m256i b) {
  // 64x64 -> 128 via 32-bit partial products, then the Mersenne fold.
  // Operands are < 2^61, so hi32(a), hi32(b) < 2^29 and:
  //   m00 = lo(a)*lo(b)            < 2^64
  //   m01 = lo(a)*hi(b)            < 2^61
  //   m10 = hi(a)*lo(b)            < 2^61
  //   m11 = hi(a)*hi(b)            < 2^58
  //   t   = m01 + m10 + (m00>>32)  < 2^63   (exact, no wrap)
  //   lo64 = (t<<32) | lo32(m00)            exact low 64 bits of the product
  //   hi   = m11 + (t>>32)         < 2^59   exact high 64 bits
  // With 2^64 == 2^3 (mod p):
  //   r = (hi<<3) + (lo64 & p) + (lo64>>61) < 2^62   == product (mod p)
  // One more fold plus a conditional subtract canonicalizes r.
  const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(M61::kP));
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i m00 = _mm256_mul_epu32(a, b);
  const __m256i m01 = _mm256_mul_epu32(a, b_hi);
  const __m256i m10 = _mm256_mul_epu32(a_hi, b);
  const __m256i m11 = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i t = _mm256_add_epi64(_mm256_add_epi64(m01, m10),
                                     _mm256_srli_epi64(m00, 32));
  const __m256i lo64 =
      _mm256_or_si256(_mm256_slli_epi64(t, 32), _mm256_and_si256(m00, lo_mask));
  const __m256i hi = _mm256_add_epi64(m11, _mm256_srli_epi64(t, 32));
  __m256i r = _mm256_add_epi64(
      _mm256_slli_epi64(hi, 3),
      _mm256_add_epi64(_mm256_and_si256(lo64, p), _mm256_srli_epi64(lo64, 61)));
  r = _mm256_add_epi64(_mm256_and_si256(r, p), _mm256_srli_epi64(r, 61));
  return m61_csub_avx2(r);
}

__attribute__((target("avx2"))) inline __m256i m61_reduce_avx2(__m256i x) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(M61::kP));
  const __m256i s =
      _mm256_add_epi64(_mm256_and_si256(x, p), _mm256_srli_epi64(x, 61));
  return m61_csub_avx2(s);
}

// --- Lazy-reduction helpers for the fused accumulation kernels ----------
//
// The accumulating kernels below defer canonicalization: values travel in a
// RELAXED range (< 2^61 + 4, congruent mod p) and only the kernel's final
// result is folded back to canonical. Residues mod p are unchanged at every
// step, so the canonical output — the only bytes anyone stores or compares
// — is bit-identical to the eager chain; the payoff is dropping one fold
// and one conditional subtract from every multiply-accumulate.

/// Single Mersenne fold: maps x < 2^63 into the relaxed range (< 2^61 + 4),
/// preserving the residue. No conditional subtract.
__attribute__((target("avx2"))) inline __m256i m61_fold_avx2(__m256i x) {
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(M61::kP));
  return _mm256_add_epi64(_mm256_and_si256(x, p), _mm256_srli_epi64(x, 61));
}

/// m61_mul_avx2 without the final fold + conditional subtract: returns a
/// value < 2^62 + 2^34 congruent to a * b. Operands may be relaxed
/// (< 2^61 + 4): hi32 stays <= 2^29 + 1, so every partial-product bound in
/// m61_mul_avx2's derivation still clears its headroom (t < 2^62 + 2^34).
__attribute__((target("avx2"))) inline __m256i m61_mul_relaxed_avx2(
    __m256i a, __m256i b) {
  const __m256i lo_mask = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(M61::kP));
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i m00 = _mm256_mul_epu32(a, b);
  const __m256i m01 = _mm256_mul_epu32(a, b_hi);
  const __m256i m10 = _mm256_mul_epu32(a_hi, b);
  const __m256i m11 = _mm256_mul_epu32(a_hi, b_hi);
  const __m256i t = _mm256_add_epi64(_mm256_add_epi64(m01, m10),
                                     _mm256_srli_epi64(m00, 32));
  const __m256i lo64 =
      _mm256_or_si256(_mm256_slli_epi64(t, 32), _mm256_and_si256(m00, lo_mask));
  const __m256i hi = _mm256_add_epi64(m11, _mm256_srli_epi64(t, 32));
  return _mm256_add_epi64(
      _mm256_slli_epi64(hi, 3),
      _mm256_add_epi64(_mm256_and_si256(lo64, p), _mm256_srli_epi64(lo64, 61)));
}

__attribute__((target("avx2"))) inline M61x8 add_avx2(const M61x8& a,
                                                      const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 4) {
    store4_avx2(out.v + i,
                m61_add_avx2(load4_avx2(a.v + i), load4_avx2(b.v + i)));
  }
  return out;
}

__attribute__((target("avx2"))) inline M61x8 sub_avx2(const M61x8& a,
                                                      const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 4) {
    store4_avx2(out.v + i,
                m61_sub_avx2(load4_avx2(a.v + i), load4_avx2(b.v + i)));
  }
  return out;
}

__attribute__((target("avx2"))) inline M61x8 mul_avx2(const M61x8& a,
                                                      const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 4) {
    store4_avx2(out.v + i,
                m61_mul_avx2(load4_avx2(a.v + i), load4_avx2(b.v + i)));
  }
  return out;
}

__attribute__((target("avx2"))) inline M61x8 reduce_avx2(
    const std::uint64_t* raw) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 4) {
    store4_avx2(out.v + i, m61_reduce_avx2(load4_avx2(raw + i)));
  }
  return out;
}

__attribute__((target("avx2"))) inline M61x8 select_avx2(const M61x8& mask,
                                                         const M61x8& a,
                                                         const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 4) {
    store4_avx2(out.v + i,
                _mm256_blendv_epi8(load4_avx2(b.v + i), load4_avx2(a.v + i),
                                   load4_avx2(mask.v + i)));
  }
  return out;
}

__attribute__((target("avx2"))) inline M61x8 cmp_eq_avx2(const M61x8& a,
                                                         const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 4) {
    store4_avx2(out.v + i,
                _mm256_cmpeq_epi64(load4_avx2(a.v + i), load4_avx2(b.v + i)));
  }
  return out;
}

#endif  // PPDS_M61XN_HAVE_AVX2_TARGET

// ---------------------------------------------------------------------------
// NEON: 2-wide add/sub/select. aarch64 has no packed 64x64 multiply, and its
// scalar 64x64->128 multiply is a single instruction pair, so mul and reduce
// stay on the portable path there (they are already branch-free).
// ---------------------------------------------------------------------------

#if PPDS_M61XN_HAVE_NEON

inline M61x8 add_neon(const M61x8& a, const M61x8& b) {
  const uint64x2_t p = vdupq_n_u64(M61::kP);
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 2) {
    const uint64x2_t s = vaddq_u64(vld1q_u64(a.v + i), vld1q_u64(b.v + i));
    const uint64x2_t ge = vcgeq_u64(s, p);
    vst1q_u64(out.v + i, vsubq_u64(s, vandq_u64(ge, p)));
  }
  return out;
}

inline M61x8 sub_neon(const M61x8& a, const M61x8& b) {
  const uint64x2_t p = vdupq_n_u64(M61::kP);
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 2) {
    const uint64x2_t s =
        vsubq_u64(vaddq_u64(vld1q_u64(a.v + i), p), vld1q_u64(b.v + i));
    const uint64x2_t ge = vcgeq_u64(s, p);
    vst1q_u64(out.v + i, vsubq_u64(s, vandq_u64(ge, p)));
  }
  return out;
}

inline M61x8 select_neon(const M61x8& mask, const M61x8& a, const M61x8& b) {
  M61x8 out;
  for (std::size_t i = 0; i < kM61Lanes; i += 2) {
    vst1q_u64(out.v + i, vbslq_u64(vld1q_u64(mask.v + i), vld1q_u64(a.v + i),
                                   vld1q_u64(b.v + i)));
  }
  return out;
}

#endif  // PPDS_M61XN_HAVE_NEON

}  // namespace detail

// ---------------------------------------------------------------------------
// Public lane ops: one cached-capability branch, then the kernel.
// ---------------------------------------------------------------------------

inline M61x8 add(const M61x8& a, const M61x8& b) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::add_avx2(a, b);
#endif
#if PPDS_M61XN_HAVE_NEON
  if (detail::use_neon()) return detail::add_neon(a, b);
#endif
  return detail::add_portable(a, b);
}

inline M61x8 sub(const M61x8& a, const M61x8& b) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::sub_avx2(a, b);
#endif
#if PPDS_M61XN_HAVE_NEON
  if (detail::use_neon()) return detail::sub_neon(a, b);
#endif
  return detail::sub_portable(a, b);
}

inline M61x8 mul(const M61x8& a, const M61x8& b) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::mul_avx2(a, b);
#endif
  return detail::mul_portable(a, b);
}

/// Branch-free two-way select: lane i of the result is a.v[i] where
/// mask.v[i] is all-ones and b.v[i] where it is all-zero. Both arms are
/// always computed — cost is independent of the (possibly secret) mask,
/// which is what lets secret-dependent choices stay off the branch predictor.
inline M61x8 select(const M61x8& mask, const M61x8& a, const M61x8& b) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::select_avx2(mask, a, b);
#endif
#if PPDS_M61XN_HAVE_NEON
  if (detail::use_neon()) return detail::select_neon(mask, a, b);
#endif
  return detail::select_portable(mask, a, b);
}

/// Lane mask builder: all-ones where a.v[i] == b.v[i].
inline M61x8 cmp_eq(const M61x8& a, const M61x8& b) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::cmp_eq_avx2(a, b);
#endif
  return detail::cmp_eq_portable(a, b);
}

inline M61x8 M61x8::reduce(const std::uint64_t* raw) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::reduce_avx2(raw);
#endif
  return detail::reduce_portable(raw);
}

/// Ring operators so M61x8 drops into the templated evaluators
/// (math::MonomialDag::evaluate, CompiledMultiPoly::evaluate_lanes) exactly
/// like scalar M61 does.
inline M61x8 operator+(const M61x8& a, const M61x8& b) { return add(a, b); }
inline M61x8 operator-(const M61x8& a, const M61x8& b) { return sub(a, b); }
inline M61x8 operator*(const M61x8& a, const M61x8& b) { return mul(a, b); }

// ---------------------------------------------------------------------------
// Fused block kernels. The per-element ops above dispatch (and cross a
// target-attribute boundary, which blocks inlining) on EVERY call, so a long
// chain of them spills the lanes through memory at each step. These kernels
// compile the whole chain per target and dispatch once per call, keeping the
// accumulators in vector registers — this is what the OMPE sweeps call.
// Lane semantics are pinned to the scalar formulas exactly like the
// per-element ops (tests/field/m61xn_test.cpp).
// ---------------------------------------------------------------------------

namespace detail {

/// Little-endian word accessors for the strided sweep kernels. On
/// little-endian hosts these must be plain memcpy — GCC does NOT reliably
/// fold the byte-wise shift/or idiom back into one move inside the
/// per-target kernels, and a 8x-unrolled byte walk per word erases the
/// whole SIMD win. The byte-wise form is kept only for big-endian hosts,
/// where it preserves the wire semantics exactly.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline std::uint64_t load_word_le(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

inline void store_word_le(std::uint8_t* p, std::uint64_t w) {
  std::memcpy(p, &w, sizeof(w));
}
#else
inline std::uint64_t load_word_le(const std::uint8_t* p) {
  std::uint64_t w = 0;
  for (unsigned i = 0; i < 8; ++i) w |= std::uint64_t{p[i]} << (8 * i);
  return w;
}

inline void store_word_le(std::uint8_t* p, std::uint64_t w) {
  for (unsigned i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(w >> (8 * i));
  }
}
#endif

/// Horner chain: lane l of the result is the scalar Horner evaluation of
/// the ascending-order coefficients c[0..n) at x.v[l].
inline M61x8 horner8_portable(const M61* c, std::size_t n, const M61x8& x) {
  M61x8 acc = M61x8::broadcast(c[n - 1]);
  for (std::size_t i = n - 1; i-- > 0;) {
    acc = add_portable(mul_portable(acc, x), M61x8::broadcast(c[i]));
  }
  return acc;
}

/// Dot-product chain with in-loop reduction: lane l accumulates
/// init.v[l] + sum_i w[i] * M61(z_raw[i * kM61Lanes + l]), where the raw
/// words pass through the reducing-constructor fold first — the shape of
/// the OMPE sender's linear evaluator over a transposed point block.
inline M61x8 dot8_reduce_portable(const M61x8& init, const M61* w,
                                  const std::uint64_t* z_raw, std::size_t n) {
  M61x8 acc = init;
  for (std::size_t i = 0; i < n; ++i) {
    const M61x8 z = reduce_portable(z_raw + i * kM61Lanes);
    acc = add_portable(acc, mul_portable(M61x8::broadcast(w[i]), z));
  }
  return acc;
}

/// Strided variant of the dot chain: lane l's word for term i is read
/// little-endian from buf + l * stride + 8 * i, so the kernel walks eight
/// wire records in place with no transpose pass.
inline M61x8 dot8_reduce_strided_portable(const M61x8& init, const M61* w,
                                          const std::uint8_t* buf,
                                          std::size_t stride, std::size_t n) {
  M61x8 acc = init;
  std::uint64_t raw[kM61Lanes];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < kM61Lanes; ++l) {
      raw[l] = load_word_le(buf + l * stride + 8 * i);
    }
    const M61x8 z = reduce_portable(raw);
    acc = add_portable(acc, mul_portable(M61x8::broadcast(w[i]), z));
  }
  return acc;
}

/// Strided block reduce: out[j] gets the lane-packed reduction of the
/// little-endian words at buf + l * stride + 8 * j — eight wire records
/// folded into M61x8 form in one pass.
inline void reduce8_strided_portable(const std::uint8_t* buf,
                                     std::size_t stride, std::size_t n,
                                     M61x8* out) {
  std::uint64_t raw[kM61Lanes];
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t l = 0; l < kM61Lanes; ++l) {
      raw[l] = load_word_le(buf + l * stride + 8 * j);
    }
    out[j] = reduce_portable(raw);
  }
}

/// Monomial-DAG sweep on lanes: node i is x[var[i]] when parent[i] == one,
/// else out[parent[i]] * x[var[i]] — math::MonomialDag::evaluate, eight
/// points per step, the whole program in one dispatched call.
inline void dag_eval8_portable(const std::uint32_t* parent,
                               const std::uint32_t* var, std::size_t n,
                               std::uint32_t one, const M61x8* x, M61x8* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const M61x8& xv = x[var[i]];
    out[i] = parent[i] == one ? xv : mul_portable(out[parent[i]], xv);
  }
}

/// Term-combine chain on lanes: accumulates broadcast(c[t]) for constant
/// terms (node[t] == one) and broadcast(c[t]) * work[node[t]] otherwise —
/// the CompiledMultiPoly term walk, eight points per step.
inline M61x8 dot8_nodes_portable(const M61* c, const std::uint32_t* node,
                                 std::size_t n, std::uint32_t one,
                                 const M61x8* work) {
  M61x8 acc{};
  for (std::size_t t = 0; t < n; ++t) {
    const M61x8 ct = M61x8::broadcast(c[t]);
    acc = add_portable(acc,
                       node[t] == one ? ct : mul_portable(ct, work[node[t]]));
  }
  return acc;
}

/// Column sweep for cover-style buffers: for each of n ascending-order
/// coefficient groups c + g * deg_p1 (deg_p1 >= 1 coefficients), Horner-
/// evaluate on lanes at x and store lane l's value little-endian at
/// ptrs[l] + 8 * g. The per-lane base pointers let the caller pack eight
/// arbitrary wire records into one block; one dispatched call covers the
/// whole block.
inline void horner8_scatter_portable(const M61* c, std::size_t deg_p1,
                                     std::size_t n, const M61x8& x,
                                     std::uint8_t* const* ptrs) {
  for (std::size_t g = 0; g < n; ++g) {
    const M61x8 acc = horner8_portable(c + g * deg_p1, deg_p1, x);
    for (std::size_t l = 0; l < kM61Lanes; ++l) {
      store_word_le(ptrs[l] + 8 * g, acc.v[l]);
    }
  }
}

/// Single-point Horner over n_groups coefficient groups in the same
/// row-major layout as horner8_scatter (group g's ascending coefficients at
/// c + g * deg_p1): group g's canonical value is stored little-endian at
/// out + 8 * g. This is the TAIL companion of horner8_scatter — when the
/// point count is not a lane multiple, the leftover points lane over
/// GROUPS here (strided coefficient gathers, vector arithmetic) instead of
/// falling back to a whole scalar point sweep.
inline void horner_groups_portable(const M61* c, std::size_t deg_p1,
                                   std::size_t n_groups, M61 x,
                                   std::uint8_t* out) {
  for (std::size_t g = 0; g < n_groups; ++g) {
    const M61* cg = c + g * deg_p1;
    M61 acc = cg[deg_p1 - 1];
    for (std::size_t i = deg_p1 - 1; i-- > 0;) acc = acc * x + cg[i];
    store_word_le(out + 8 * g, acc.value());
  }
}

#if PPDS_M61XN_HAVE_AVX2_TARGET

__attribute__((target("avx2"))) inline M61x8 horner8_avx2(const M61* c,
                                                          std::size_t n,
                                                          const M61x8& x) {
  const __m256i x0 = load4_avx2(x.v);
  const __m256i x1 = load4_avx2(x.v + 4);
  __m256i a0 =
      _mm256_set1_epi64x(static_cast<long long>(c[n - 1].value()));
  __m256i a1 = a0;
  for (std::size_t i = n - 1; i-- > 0;) {
    const __m256i ci =
        _mm256_set1_epi64x(static_cast<long long>(c[i].value()));
    // Lazy step: acc stays relaxed across the chain, one fold per link.
    a0 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(a0, x0), ci));
    a1 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(a1, x1), ci));
  }
  M61x8 out;
  store4_avx2(out.v, m61_reduce_avx2(a0));
  store4_avx2(out.v + 4, m61_reduce_avx2(a1));
  return out;
}

__attribute__((target("avx2"))) inline M61x8 dot8_reduce_avx2(
    const M61x8& init, const M61* w, const std::uint64_t* z_raw,
    std::size_t n) {
  __m256i a0 = load4_avx2(init.v);
  __m256i a1 = load4_avx2(init.v + 4);
  for (std::size_t i = 0; i < n; ++i) {
    const __m256i wi =
        _mm256_set1_epi64x(static_cast<long long>(w[i].value()));
    const __m256i z0 = m61_reduce_avx2(load4_avx2(z_raw + i * kM61Lanes));
    const __m256i z1 = m61_reduce_avx2(load4_avx2(z_raw + i * kM61Lanes + 4));
    a0 = m61_fold_avx2(_mm256_add_epi64(a0, m61_mul_relaxed_avx2(wi, z0)));
    a1 = m61_fold_avx2(_mm256_add_epi64(a1, m61_mul_relaxed_avx2(wi, z1)));
  }
  M61x8 out;
  store4_avx2(out.v, m61_reduce_avx2(a0));
  store4_avx2(out.v + 4, m61_reduce_avx2(a1));
  return out;
}

// Strided 4-lane vector load: little-endian words gathered from four wire
// records. The scalar loads inline here (baseline callee into an avx2
// caller is fine) and GCC turns the pack into vmovq/vpinsrq pairs.
__attribute__((target("avx2"))) inline __m256i load4_strided_avx2(
    const std::uint8_t* p, std::size_t stride) {
  return _mm256_set_epi64x(
      static_cast<long long>(load_word_le(p + 3 * stride)),
      static_cast<long long>(load_word_le(p + 2 * stride)),
      static_cast<long long>(load_word_le(p + stride)),
      static_cast<long long>(load_word_le(p)));
}

__attribute__((target("avx2"))) inline M61x8 dot8_reduce_strided_avx2(
    const M61x8& init, const M61* w, const std::uint8_t* buf,
    std::size_t stride, std::size_t n) {
  // Two-way unroll with separate accumulators. Addition mod p is
  // commutative and every partial tracks the same residue, so folding the
  // odd accumulator in at the end gives bit-identical results to the scalar
  // left-to-right chain while doubling the independent dependency chains;
  // the accumulators themselves ride the lazy relaxed range.
  const std::uint8_t* hi = buf + 4 * stride;
  __m256i a0 = load4_avx2(init.v);
  __m256i a1 = load4_avx2(init.v + 4);
  __m256i b0 = _mm256_setzero_si256();
  __m256i b1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256i wi =
        _mm256_set1_epi64x(static_cast<long long>(w[i].value()));
    const __m256i wj =
        _mm256_set1_epi64x(static_cast<long long>(w[i + 1].value()));
    const __m256i z0 =
        m61_reduce_avx2(load4_strided_avx2(buf + 8 * i, stride));
    const __m256i z1 = m61_reduce_avx2(load4_strided_avx2(hi + 8 * i, stride));
    const __m256i y0 =
        m61_reduce_avx2(load4_strided_avx2(buf + 8 * i + 8, stride));
    const __m256i y1 =
        m61_reduce_avx2(load4_strided_avx2(hi + 8 * i + 8, stride));
    a0 = m61_fold_avx2(_mm256_add_epi64(a0, m61_mul_relaxed_avx2(wi, z0)));
    a1 = m61_fold_avx2(_mm256_add_epi64(a1, m61_mul_relaxed_avx2(wi, z1)));
    b0 = m61_fold_avx2(_mm256_add_epi64(b0, m61_mul_relaxed_avx2(wj, y0)));
    b1 = m61_fold_avx2(_mm256_add_epi64(b1, m61_mul_relaxed_avx2(wj, y1)));
  }
  // Merge stays in range: two relaxed values sum below 2^62 + 8.
  a0 = m61_fold_avx2(_mm256_add_epi64(a0, b0));
  a1 = m61_fold_avx2(_mm256_add_epi64(a1, b1));
  for (; i < n; ++i) {
    const __m256i wi =
        _mm256_set1_epi64x(static_cast<long long>(w[i].value()));
    const __m256i z0 =
        m61_reduce_avx2(load4_strided_avx2(buf + 8 * i, stride));
    const __m256i z1 = m61_reduce_avx2(load4_strided_avx2(hi + 8 * i, stride));
    a0 = m61_fold_avx2(_mm256_add_epi64(a0, m61_mul_relaxed_avx2(wi, z0)));
    a1 = m61_fold_avx2(_mm256_add_epi64(a1, m61_mul_relaxed_avx2(wi, z1)));
  }
  M61x8 out;
  store4_avx2(out.v, m61_reduce_avx2(a0));
  store4_avx2(out.v + 4, m61_reduce_avx2(a1));
  return out;
}

__attribute__((target("avx2"))) inline void reduce8_strided_avx2(
    const std::uint8_t* buf, std::size_t stride, std::size_t n, M61x8* out) {
  const std::uint8_t* hi = buf + 4 * stride;
  for (std::size_t j = 0; j < n; ++j) {
    store4_avx2(out[j].v,
                m61_reduce_avx2(load4_strided_avx2(buf + 8 * j, stride)));
    store4_avx2(out[j].v + 4,
                m61_reduce_avx2(load4_strided_avx2(hi + 8 * j, stride)));
  }
}

// Note: stores RELAXED node values (< 2^61 + 4, congruent mod p to the
// scalar node values) rather than canonical ones — the chain bounds of
// m61_mul_relaxed_avx2 hold with both operands relaxed, and the only
// consumer inside the fused pipeline (dot8_nodes) canonicalizes its result.
// The public dag_eval8 dispatcher documents this contract.
__attribute__((target("avx2"))) inline void dag_eval8_avx2(
    const std::uint32_t* parent, const std::uint32_t* var, std::size_t n,
    std::uint32_t one, const M61x8* x, M61x8* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const M61x8& xv = x[var[i]];
    if (parent[i] == one) {
      out[i] = xv;
      continue;
    }
    const M61x8& pv = out[parent[i]];
    store4_avx2(out[i].v, m61_fold_avx2(m61_mul_relaxed_avx2(
                              load4_avx2(pv.v), load4_avx2(xv.v))));
    store4_avx2(out[i].v + 4, m61_fold_avx2(m61_mul_relaxed_avx2(
                                  load4_avx2(pv.v + 4), load4_avx2(xv.v + 4))));
  }
}

__attribute__((target("avx2"))) inline M61x8 dot8_nodes_avx2(
    const M61* c, const std::uint32_t* node, std::size_t n, std::uint32_t one,
    const M61x8* work) {
  // Reassociated dual accumulators riding the lazy relaxed range; residues
  // mod p match the scalar chain exactly (see dot8_reduce_strided).
  __m256i a0 = _mm256_setzero_si256();
  __m256i a1 = _mm256_setzero_si256();
  __m256i b0 = _mm256_setzero_si256();
  __m256i b1 = _mm256_setzero_si256();
  std::size_t t = 0;
  for (; t + 2 <= n; t += 2) {
    const __m256i ci =
        _mm256_set1_epi64x(static_cast<long long>(c[t].value()));
    const __m256i cj =
        _mm256_set1_epi64x(static_cast<long long>(c[t + 1].value()));
    if (node[t] == one) {
      a0 = m61_fold_avx2(_mm256_add_epi64(a0, ci));
      a1 = m61_fold_avx2(_mm256_add_epi64(a1, ci));
    } else {
      const M61x8& wt = work[node[t]];
      a0 = m61_fold_avx2(
          _mm256_add_epi64(a0, m61_mul_relaxed_avx2(ci, load4_avx2(wt.v))));
      a1 = m61_fold_avx2(
          _mm256_add_epi64(a1, m61_mul_relaxed_avx2(ci, load4_avx2(wt.v + 4))));
    }
    if (node[t + 1] == one) {
      b0 = m61_fold_avx2(_mm256_add_epi64(b0, cj));
      b1 = m61_fold_avx2(_mm256_add_epi64(b1, cj));
    } else {
      const M61x8& wu = work[node[t + 1]];
      b0 = m61_fold_avx2(
          _mm256_add_epi64(b0, m61_mul_relaxed_avx2(cj, load4_avx2(wu.v))));
      b1 = m61_fold_avx2(
          _mm256_add_epi64(b1, m61_mul_relaxed_avx2(cj, load4_avx2(wu.v + 4))));
    }
  }
  a0 = m61_fold_avx2(_mm256_add_epi64(a0, b0));
  a1 = m61_fold_avx2(_mm256_add_epi64(a1, b1));
  for (; t < n; ++t) {
    const __m256i ci =
        _mm256_set1_epi64x(static_cast<long long>(c[t].value()));
    if (node[t] == one) {
      a0 = m61_fold_avx2(_mm256_add_epi64(a0, ci));
      a1 = m61_fold_avx2(_mm256_add_epi64(a1, ci));
    } else {
      const M61x8& wt = work[node[t]];
      a0 = m61_fold_avx2(
          _mm256_add_epi64(a0, m61_mul_relaxed_avx2(ci, load4_avx2(wt.v))));
      a1 = m61_fold_avx2(
          _mm256_add_epi64(a1, m61_mul_relaxed_avx2(ci, load4_avx2(wt.v + 4))));
    }
  }
  M61x8 out;
  store4_avx2(out.v, m61_reduce_avx2(a0));
  store4_avx2(out.v + 4, m61_reduce_avx2(a1));
  return out;
}

__attribute__((target("avx2"))) inline void horner8_scatter_avx2(
    const M61* c, std::size_t deg_p1, std::size_t n, const M61x8& x,
    std::uint8_t* const* ptrs) {
  const __m256i x0 = load4_avx2(x.v);
  const __m256i x1 = load4_avx2(x.v + 4);
  // Lazy Horner chains, two coefficient groups per iteration: a single
  // group leaves the serial mul/add recurrence latency-bound, so four
  // chains (two groups x two lane halves) keep the multiplier fed.
  // (A power-basis variant with precomputed x^l — independent multiplies,
  // no serial mul chain — measured SLOWER here: four lazy chains already
  // saturate multiply throughput, and the power-table loads only added
  // port pressure.)
  std::size_t g = 0;
  for (; g + 2 <= n; g += 2) {
    const M61* cg = c + g * deg_p1;
    const M61* ch = cg + deg_p1;
    __m256i a0 =
        _mm256_set1_epi64x(static_cast<long long>(cg[deg_p1 - 1].value()));
    __m256i a1 = a0;
    __m256i b0 =
        _mm256_set1_epi64x(static_cast<long long>(ch[deg_p1 - 1].value()));
    __m256i b1 = b0;
    for (std::size_t i = deg_p1 - 1; i-- > 0;) {
      const __m256i ci =
          _mm256_set1_epi64x(static_cast<long long>(cg[i].value()));
      const __m256i cj =
          _mm256_set1_epi64x(static_cast<long long>(ch[i].value()));
      a0 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(a0, x0), ci));
      a1 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(a1, x1), ci));
      b0 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(b0, x0), cj));
      b1 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(b1, x1), cj));
    }
    alignas(32) std::uint64_t out[2 * kM61Lanes];
    store4_avx2(out, m61_reduce_avx2(a0));
    store4_avx2(out + 4, m61_reduce_avx2(a1));
    store4_avx2(out + 8, m61_reduce_avx2(b0));
    store4_avx2(out + 12, m61_reduce_avx2(b1));
    for (std::size_t l = 0; l < kM61Lanes; ++l) {
      store_word_le(ptrs[l] + 8 * g, out[l]);
      store_word_le(ptrs[l] + 8 * g + 8, out[kM61Lanes + l]);
    }
  }
  for (; g < n; ++g) {
    const M61* cg = c + g * deg_p1;
    __m256i a0 =
        _mm256_set1_epi64x(static_cast<long long>(cg[deg_p1 - 1].value()));
    __m256i a1 = a0;
    for (std::size_t i = deg_p1 - 1; i-- > 0;) {
      const __m256i ci =
          _mm256_set1_epi64x(static_cast<long long>(cg[i].value()));
      a0 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(a0, x0), ci));
      a1 = m61_fold_avx2(_mm256_add_epi64(m61_mul_relaxed_avx2(a1, x1), ci));
    }
    alignas(32) std::uint64_t out[kM61Lanes];
    store4_avx2(out, m61_reduce_avx2(a0));
    store4_avx2(out + 4, m61_reduce_avx2(a1));
    for (std::size_t l = 0; l < kM61Lanes; ++l) {
      store_word_le(ptrs[l] + 8 * g, out[l]);
    }
  }
}

/// Coefficient i of four consecutive row-major groups, gathered at stride
/// deg_p1 elements. \p ci points at group g's coefficient i.
__attribute__((target("avx2"))) inline __m256i load4_coeff_strided_avx2(
    const M61* ci, std::size_t deg_p1) {
  return _mm256_set_epi64x(static_cast<long long>(ci[3 * deg_p1].value()),
                           static_cast<long long>(ci[2 * deg_p1].value()),
                           static_cast<long long>(ci[deg_p1].value()),
                           static_cast<long long>(ci[0].value()));
}

__attribute__((target("avx2"))) inline void horner_groups_avx2(
    const M61* c, std::size_t deg_p1, std::size_t n_groups, M61 x,
    std::uint8_t* out) {
  const __m256i xb = _mm256_set1_epi64x(static_cast<long long>(x.value()));
  // Eight groups (two vectors) per iteration: the point is the broadcast
  // operand here and the coefficients the vector one — the transpose of
  // horner8_scatter — so coefficient loads are strided gathers, but the
  // arithmetic runs four lanes wide and the output stores are contiguous.
  std::size_t g = 0;
  for (; g + 8 <= n_groups; g += 8) {
    const M61* cg = c + g * deg_p1;
    const M61* ch = cg + 4 * deg_p1;
    __m256i a0 = load4_coeff_strided_avx2(cg + deg_p1 - 1, deg_p1);
    __m256i a1 = load4_coeff_strided_avx2(ch + deg_p1 - 1, deg_p1);
    for (std::size_t i = deg_p1 - 1; i-- > 0;) {
      a0 = m61_fold_avx2(
          _mm256_add_epi64(m61_mul_relaxed_avx2(a0, xb),
                           load4_coeff_strided_avx2(cg + i, deg_p1)));
      a1 = m61_fold_avx2(
          _mm256_add_epi64(m61_mul_relaxed_avx2(a1, xb),
                           load4_coeff_strided_avx2(ch + i, deg_p1)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g),
                        m61_reduce_avx2(a0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8 * g + 32),
                        m61_reduce_avx2(a1));
  }
  for (; g < n_groups; ++g) {
    const M61* cg = c + g * deg_p1;
    M61 acc = cg[deg_p1 - 1];
    for (std::size_t i = deg_p1 - 1; i-- > 0;) acc = acc * x + cg[i];
    store_word_le(out + 8 * g, acc.value());
  }
}

#endif  // PPDS_M61XN_HAVE_AVX2_TARGET

}  // namespace detail

/// Lane Horner over ascending coefficients c[0..n), n >= 1: lane l equals
/// the scalar chain acc = c[n-1]; acc = acc * x + c[i] exactly.
inline M61x8 horner8(const M61* c, std::size_t n, const M61x8& x) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::horner8_avx2(c, n, x);
#endif
  return detail::horner8_portable(c, n, x);
}

/// Lane dot product with in-loop raw-word reduction: lane l equals the
/// scalar chain acc = init; acc = acc + w[i] * M61(z_raw[i*8 + l]) exactly.
inline M61x8 dot8_reduce(const M61x8& init, const M61* w,
                         const std::uint64_t* z_raw, std::size_t n) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) return detail::dot8_reduce_avx2(init, w, z_raw, n);
#endif
  return detail::dot8_reduce_portable(init, w, z_raw, n);
}

/// dot8_reduce over eight strided little-endian wire records: lane l's word
/// for term i lives at buf + l * stride + 8 * i. No transpose pass — the
/// kernel gathers in place.
inline M61x8 dot8_reduce_strided(const M61x8& init, const M61* w,
                                 const std::uint8_t* buf, std::size_t stride,
                                 std::size_t n) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) {
    return detail::dot8_reduce_strided_avx2(init, w, buf, stride, n);
  }
#endif
  return detail::dot8_reduce_strided_portable(init, w, buf, stride, n);
}

/// Fused Horner scatter over n coefficient groups (deg_p1 ascending
/// coefficients each): group g is Horner-evaluated on lanes at x and lane
/// l's value is stored little-endian at ptrs[l] + 8 * g. Lane semantics
/// match the scalar Horner chain exactly; the per-lane pointers let the
/// caller pack eight arbitrary records (e.g. the kept subset of a request
/// body) into one block.
inline void horner8_scatter(const M61* c, std::size_t deg_p1, std::size_t n,
                            const M61x8& x, std::uint8_t* const* ptrs) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) {
    detail::horner8_scatter_avx2(c, deg_p1, n, x, ptrs);
    return;
  }
#endif
  detail::horner8_scatter_portable(c, deg_p1, n, x, ptrs);
}

/// Single-point Horner over row-major groups (the horner8_scatter layout:
/// group g's ascending coefficients at c + g * deg_p1), storing group g's
/// canonical value little-endian at out + 8 * g. The tail companion of
/// horner8_scatter: leftover points of a partial lane block lane over
/// GROUPS here — strided coefficient gathers, four-wide arithmetic,
/// contiguous stores — instead of a whole scalar point sweep. Lane
/// semantics match the scalar chain acc = c[top]; acc = acc * x + c[i]
/// exactly.
inline void horner_groups(const M61* c, std::size_t deg_p1,
                          std::size_t n_groups, M61 x, std::uint8_t* out) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) {
    detail::horner_groups_avx2(c, deg_p1, n_groups, x, out);
    return;
  }
#endif
  detail::horner_groups_portable(c, deg_p1, n_groups, x, out);
}

/// Reduce n strided variates into lane vectors: out[j].v[l] is the Mersenne
/// fold of the little-endian word at buf + l * stride + 8 * j — the wire
/// layout of eight consecutive OMPE point records.
inline void reduce8_strided(const std::uint8_t* buf, std::size_t stride,
                            std::size_t n, M61x8* out) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) {
    detail::reduce8_strided_avx2(buf, stride, n, out);
    return;
  }
#endif
  detail::reduce8_strided_portable(buf, stride, n, out);
}

/// Monomial-DAG sweep on lanes: out[i] = x[var[i]] when parent[i] == one,
/// else out[parent[i]] * x[var[i]] — MonomialDag::evaluate, eight points
/// per node step. The stored node values are RELAXED residues: congruent
/// mod p to the scalar node values but not necessarily < p (the AVX2 path
/// defers canonicalization). Feed them to dot8_nodes — whose result is
/// canonical — or apply reduce before comparing bytes.
inline void dag_eval8(const std::uint32_t* parent, const std::uint32_t* var,
                      std::size_t n, std::uint32_t one, const M61x8* x,
                      M61x8* out) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) {
    detail::dag_eval8_avx2(parent, var, n, one, x, out);
    return;
  }
#endif
  detail::dag_eval8_portable(parent, var, n, one, x, out);
}

/// Term-combine chain on lanes: sum of broadcast(c[t]) for constant terms
/// (node[t] == one) and broadcast(c[t]) * work[node[t]] otherwise — the
/// CompiledMultiPoly term walk over a DAG work array from dag_eval8.
inline M61x8 dot8_nodes(const M61* c, const std::uint32_t* node, std::size_t n,
                        std::uint32_t one, const M61x8* work) {
#if PPDS_M61XN_HAVE_AVX2_TARGET
  if (detail::use_avx2()) {
    return detail::dot8_nodes_avx2(c, node, n, one, work);
  }
#endif
  return detail::dot8_nodes_portable(c, node, n, one, work);
}

}  // namespace ppds::field
