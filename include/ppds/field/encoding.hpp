#pragma once

#include <vector>

#include "ppds/common/fixed_point.hpp"
#include "ppds/field/m61.hpp"

/// \file encoding.hpp
/// Fixed-point embedding of reals into F_{2^61-1} and back.
///
/// Scale bookkeeping: a value encoded with `frac_bits` fractional bits and
/// then multiplied k times carries k*frac_bits of scale. decode() takes the
/// accumulated factor count so the exact OMPE backend can recover reals
/// after evaluating a degree-d polynomial.

namespace ppds::field {

/// Encodes one real as a field element.
inline M61 encode(const FixedPoint& fp, double x) {
  return M61::from_signed(fp.encode(x));
}

/// Decodes a field element that carries \p factors accumulated scales.
inline double decode(const FixedPoint& fp, M61 v, unsigned factors = 1) {
  return fp.decode(v.to_signed(), factors);
}

inline std::vector<M61> encode_vec(const FixedPoint& fp,
                                   const std::vector<double>& xs) {
  std::vector<M61> out;
  out.reserve(xs.size());
  for (double x : xs) out.push_back(encode(fp, x));
  return out;
}

/// Sign of the signed interpretation: -1, 0 or +1. The classification
/// protocol only needs this bit of B(0).
inline int sign_of(M61 v) {
  const std::int64_t s = v.to_signed();
  return (s > 0) - (s < 0);
}

}  // namespace ppds::field
