#pragma once

#include <cstdint>

#include "ppds/common/error.hpp"

/// \file m61.hpp
/// Arithmetic in the prime field F_p with p = 2^61 - 1 (a Mersenne prime).
///
/// This is the coefficient field of the *exact* OMPE backend: the paper's
/// protocol is described over the reals, but the original OMPE construction
/// (Tassa et al.) lives in a finite field, and floating-point interpolation
/// at degree p*q can lose the sign of d(t) for near-boundary samples. The
/// exact backend embeds fixed-point reals into F_p (negatives as p - |v|)
/// and recovers sign by comparing against p/2.
///
/// Mersenne reduction keeps multiplication branch-free and fast on one core.

namespace ppds::field {

/// Element of F_{2^61 - 1}. Value-semantic; all operations are total.
class M61 {
 public:
  static constexpr std::uint64_t kP = (std::uint64_t{1} << 61) - 1;

  constexpr M61() = default;

  /// From an unsigned residue, reduced mod p with the branch-free Mersenne
  /// fold: v = hi * 2^61 + lo == hi + lo (mod 2^61 - 1). The folded sum is
  /// at most kP + 7, so a single conditional subtract canonicalizes it.
  constexpr explicit M61(std::uint64_t v) : v_((v & kP) + (v >> 61)) {
    if (v_ >= kP) v_ -= kP;
  }

  /// Embeds a signed integer: negatives map to p - |v|.
  static M61 from_signed(std::int64_t v) {
    if (v >= 0) return M61(static_cast<std::uint64_t>(v));
    const std::uint64_t mag = static_cast<std::uint64_t>(-(v + 1)) + 1;
    return M61(0) - M61(mag);
  }

  /// Interprets the residue as signed: values > p/2 are negative.
  std::int64_t to_signed() const {
    if (v_ > kP / 2) return -static_cast<std::int64_t>(kP - v_);
    return static_cast<std::int64_t>(v_);
  }

  std::uint64_t value() const { return v_; }

  friend M61 operator+(M61 a, M61 b) {
    std::uint64_t s = a.v_ + b.v_;
    if (s >= kP) s -= kP;
    M61 out;
    out.v_ = s;
    return out;
  }

  friend M61 operator-(M61 a, M61 b) {
    std::uint64_t s = a.v_ + kP - b.v_;
    if (s >= kP) s -= kP;
    M61 out;
    out.v_ = s;
    return out;
  }

  friend M61 operator*(M61 a, M61 b) {
    __extension__ using u128 = unsigned __int128;
    const u128 prod = static_cast<u128>(a.v_) * b.v_;
    // Mersenne reduction: x = hi * 2^61 + lo == hi + lo (mod 2^61 - 1).
    std::uint64_t lo = static_cast<std::uint64_t>(prod) & kP;
    std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
    std::uint64_t s = lo + hi;
    if (s >= kP) s -= kP;
    M61 out;
    out.v_ = s;
    return out;
  }

  friend M61 operator/(M61 a, M61 b) { return a * b.inverse(); }

  friend bool operator==(M61 a, M61 b) { return a.v_ == b.v_; }
  friend bool operator!=(M61 a, M61 b) { return a.v_ != b.v_; }

  /// Modular exponentiation by squaring.
  M61 pow(std::uint64_t e) const {
    M61 base = *this;
    M61 acc;
    acc.v_ = 1;
    while (e != 0) {
      if (e & 1) acc = acc * base;
      base = base * base;
      e >>= 1;
    }
    return acc;
  }

  /// Multiplicative inverse via Fermat (p is prime). Throws on zero.
  M61 inverse() const {
    if (v_ == 0) throw InvalidArgument("M61: inverse of zero");
    return pow(kP - 2);
  }

  bool is_zero() const { return v_ == 0; }

 private:
  std::uint64_t v_ = 0;
};

}  // namespace ppds::field
