#pragma once

#include <vector>

#include "ppds/svm/dataset.hpp"

/// \file kstest.hpp
/// Two-sample Kolmogorov-Smirnov test — the reference similarity
/// measurement of Table II. The paper runs the test per feature dimension
/// and averages over dimensions; its reported magnitudes match the
/// *normalized* statistic D * sqrt(n*m/(n+m)), so we expose both.

namespace ppds::data {

/// Raw two-sample KS statistic D = sup_x |F1(x) - F2(x)| for two 1-D samples.
double ks_statistic(std::vector<double> a, std::vector<double> b);

/// D scaled by sqrt(n*m/(n+m)) (the asymptotic normalization whose scale
/// matches the K-S column of Table II).
double ks_statistic_normalized(std::vector<double> a, std::vector<double> b);

/// Per-dimension KS between two datasets' feature marginals, averaged over
/// dimensions — exactly the Table II procedure.
struct KsComparison {
  double average_d = 0.0;           ///< mean raw statistic over dimensions
  double average_normalized = 0.0;  ///< mean normalized statistic
  std::vector<double> per_dimension_d;
};

KsComparison ks_compare(const svm::Dataset& a, const svm::Dataset& b);

}  // namespace ppds::data
