#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ppds/svm/dataset.hpp"

/// \file synthetic.hpp
/// Synthetic analogues of the 17 LIBSVM benchmark datasets used by Table I.
///
/// The original UCI/LIBSVM files are not shipped; per the substitution rule
/// in DESIGN.md §4 each dataset is replaced by a deterministic generator
/// that matches its dimensionality and qualitative class structure, chosen
/// so the *relative* pattern of Table I survives: which kernel wins on which
/// dataset (e.g. madelon is hopeless for a linear SVM but separable for the
/// degree-3 polynomial kernel; cod-rna is the reverse). Sizes are scaled
/// down where the original is large so the benches finish on one core;
/// `train_size`/`test_size` record our sizes, `paper_test_size` the paper's.

namespace ppds::data {

/// How the two classes are laid out in feature space.
enum class StructureKind {
  kLinearMargin,    ///< Gaussian classes separated by a random hyperplane
  kQuadraticSurface,///< labels from the sign of a degree-2..3 polynomial surface
  kXorClusters,     ///< XOR-style cluster parity (linearly inseparable)
  kTinyScaleLinear, ///< linearly separable but features so small the paper's
                    ///< (x.t/n)^3 polynomial kernel collapses (cod-rna pattern)
};

/// Generator recipe for one named dataset.
struct DatasetSpec {
  std::string name;
  std::size_t dim = 2;
  std::size_t train_size = 200;
  std::size_t test_size = 200;
  std::size_t paper_test_size = 0;   ///< "Testing Size" column of Table I
  double paper_linear_acc = 0.0;     ///< Table I, linear column (fraction)
  double paper_poly_acc = 0.0;       ///< Table I, polynomial column (fraction)
  StructureKind structure = StructureKind::kLinearMargin;
  double noise = 0.1;                ///< label-flip / overlap level
  double curvature = 0.0;            ///< weight of the nonlinear surface term
  double positive_fraction = 0.5;    ///< class balance
  std::uint64_t seed = 1;
  std::size_t informative_dims = 0;  ///< 0 = all dims informative
  std::size_t paper_dim = 0;         ///< paper's dimension when we downscale
  double feature_scale = 1.0;        ///< post-hoc feature shrink (cod-rna)
  /// Latent factor dimension: features are a random linear mixing of this
  /// many latent factors (real tabular data is feature-correlated; an
  /// isotropic cloud would give the polynomial kernel a near-diagonal Gram
  /// matrix and make generalization impossible). 0 = isotropic features.
  std::size_t latent_dim = 8;
  /// Magnitude of the non-informative (distractor) features relative to
  /// the informative ones, for isotropic XOR datasets (madelon's probe
  /// features are low-variance after scaling). 1.0 = same scale.
  double distractor_scale = 1.0;
  /// Minimum |noiseless score| kept during sampling: a margin gap around
  /// the decision surface (madelon's clean separability).
  double margin = 0.0;
  /// Box constraints. The paper fixes the kernel hyperparameters
  /// (a0 = 1/n, b0 = 0, p = 3) across datasets; with b0 = 0 the kernel
  /// values scale like (x.t/n)^3, so an adequate C for the polynomial
  /// kernel grows with the dimension. These are dataset-level training
  /// constants, part of the generator recipe.
  double c_linear = 1.0;
  double c_poly = 1.0;
};

/// The 17 Table I datasets: splice, madelon, diabetes, german.numer,
/// a1a..a9a, australian, cod-rna, ionosphere, breast-cancer.
const std::vector<DatasetSpec>& table1_specs();

/// Looks a spec up by name; nullopt if unknown.
std::optional<DatasetSpec> spec_by_name(const std::string& name);

/// Generates (train, test) for a spec. Deterministic in spec.seed.
std::pair<svm::Dataset, svm::Dataset> generate(const DatasetSpec& spec);

/// Generates a single pool of \p count samples from the spec's structure
/// (used by the Table II subset-splitting experiment).
svm::Dataset generate_pool(const DatasetSpec& spec, std::size_t count,
                           std::uint64_t seed_override);

}  // namespace ppds::data
